// Tests for the ML substrate: datasets, k-NN, k-means (+ the balanced-k
// scheduler), matmul, and the distributed scaling drivers.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "ml/dataset.hpp"
#include "ml/distributed.hpp"
#include "ml/kmeans.hpp"
#include "ml/knn.hpp"
#include "ml/matmul.hpp"

using namespace ombx;
using namespace ombx::ml;

// ---- Datasets -----------------------------------------------------------------

TEST(Dataset, Dota2ShapeAndDeterminism) {
  const Dataset a = make_dota2_like(500, 16, 1);
  EXPECT_EQ(a.n, 500);
  EXPECT_EQ(a.d, 16);
  EXPECT_EQ(a.x.size(), 500U * 16U);
  EXPECT_EQ(a.y.size(), 500U);
  const Dataset b = make_dota2_like(500, 16, 1);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
  EXPECT_NE(make_dota2_like(500, 16, 2).x, a.x);
}

TEST(Dataset, Dota2FeaturesAreSparseCategorical) {
  const Dataset ds = make_dota2_like(2000, 32, 3);
  int zeros = 0;
  for (const float v : ds.x) {
    EXPECT_TRUE(v == 0.0F || v == 1.0F || v == -1.0F);
    if (v == 0.0F) ++zeros;
  }
  EXPECT_GT(zeros, static_cast<int>(ds.x.size() * 0.8));
}

TEST(Dataset, Dota2LabelsAreBalancedish) {
  const Dataset ds = make_dota2_like(4000, 32, 4);
  const int ones = static_cast<int>(
      std::count(ds.y.begin(), ds.y.end(), 1));
  EXPECT_GT(ones, 1200);
  EXPECT_LT(ones, 2800);
}

TEST(Dataset, BlobsClusterAroundCentroids) {
  const Dataset ds = make_blobs(1000, 2, 5, 0.3, 9);
  EXPECT_EQ(ds.n, 1000);
  for (const int label : ds.y) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 5);
  }
}

TEST(Dataset, SplitPartitionsExactly) {
  const Dataset ds = make_dota2_like(1000, 8, 5);
  const TrainTestSplit s = split(ds, 0.2, 6);
  EXPECT_EQ(s.test.n, 200);
  EXPECT_EQ(s.train.n, 800);
  EXPECT_EQ(s.train.d, 8);
  EXPECT_THROW((void)split(ds, 0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)split(ds, 1.0, 1), std::invalid_argument);
}

// ---- k-NN ---------------------------------------------------------------------

TEST(Knn, LearnsPlantedStructure) {
  const Dataset ds = make_dota2_like(1500, 16, 11);
  const TrainTestSplit s = split(ds, 0.2, 11);
  KnnClassifier knn(5);
  knn.fit(s.train);
  const double acc = knn.score(s.test);
  EXPECT_GT(acc, 0.62) << "planted signal must beat chance clearly";
}

TEST(Knn, PerfectOnSeenPoints) {
  // With k=1 every training point is its own nearest neighbour.
  const Dataset ds = make_blobs(200, 4, 3, 0.5, 12);
  KnnClassifier knn(1);
  knn.fit(ds);
  EXPECT_DOUBLE_EQ(knn.score(ds), 1.0);
}

TEST(Knn, RejectsMisuse) {
  EXPECT_THROW(KnnClassifier(0), std::invalid_argument);
  KnnClassifier knn(5);
  const Dataset tiny = make_blobs(3, 2, 1, 0.1, 1);
  EXPECT_THROW(knn.fit(tiny), std::invalid_argument);
  const Dataset ok = make_blobs(50, 2, 1, 0.1, 1);
  knn.fit(ok);
  std::vector<float> bad(7);
  EXPECT_THROW((void)knn.predict(bad, 2), std::invalid_argument);
}

TEST(Knn, FlopModelScalesLinearly) {
  const double base = KnnClassifier::predict_flops(10, 100, 8);
  EXPECT_DOUBLE_EQ(KnnClassifier::predict_flops(20, 100, 8), 2 * base);
  EXPECT_DOUBLE_EQ(KnnClassifier::predict_flops(10, 200, 8), 2 * base);
}

// ---- k-means -------------------------------------------------------------------

TEST(Kmeans, InertiaDecreasesWithK) {
  const Dataset ds = make_blobs(600, 2, 6, 0.4, 21);
  const std::vector<double> inertia = inertia_sweep(ds, 8, 30, 21);
  ASSERT_EQ(inertia.size(), 8U);
  // The elbow property: inertia at k=6 (true centers) far below k=1.
  EXPECT_LT(inertia[5], 0.25 * inertia[0]);
  for (const double v : inertia) EXPECT_GE(v, 0.0);
}

TEST(Kmeans, DeterministicGivenSeed) {
  const Dataset ds = make_blobs(300, 2, 4, 0.4, 22);
  const KmeansResult a = kmeans_fit(ds, 4, 25, 7);
  const KmeansResult b = kmeans_fit(ds, 4, 25, 7);
  EXPECT_EQ(a.inertia, b.inertia);
  EXPECT_EQ(a.centroids, b.centroids);
}

TEST(Kmeans, RejectsMisuse) {
  const Dataset ds = make_blobs(10, 2, 2, 0.4, 23);
  EXPECT_THROW((void)kmeans_fit(ds, 0, 10, 1), std::invalid_argument);
  EXPECT_THROW((void)kmeans_fit(ds, 11, 10, 1), std::invalid_argument);
  EXPECT_THROW((void)kmeans_fit(ds, 2, 0, 1), std::invalid_argument);
}

TEST(Kmeans, BalanceCoversEveryKExactlyOnce) {
  const auto groups = balance_k_values(200, 7);
  ASSERT_EQ(groups.size(), 7U);
  std::vector<int> seen;
  for (const auto& g : groups) {
    seen.insert(seen.end(), g.begin(), g.end());
  }
  std::sort(seen.begin(), seen.end());
  std::vector<int> expect(200);
  std::iota(expect.begin(), expect.end(), 1);
  EXPECT_EQ(seen, expect);
}

TEST(Kmeans, BalanceIsActuallyBalanced) {
  const auto groups = balance_k_values(200, 8);
  std::vector<double> loads;
  for (const auto& g : groups) {
    loads.push_back(std::accumulate(g.begin(), g.end(), 0.0));
  }
  const double mx = *std::max_element(loads.begin(), loads.end());
  const double mn = *std::min_element(loads.begin(), loads.end());
  // LPT keeps the spread within the largest single item.
  EXPECT_LE(mx - mn, 200.0);
  EXPECT_LE(mx, 1.1 * (20100.0 / 8.0));
}

TEST(Kmeans, BalanceMoreWorkersThanK) {
  const auto groups = balance_k_values(4, 10);
  int nonempty = 0;
  for (const auto& g : groups) {
    if (!g.empty()) ++nonempty;
  }
  EXPECT_EQ(nonempty, 4);
}

// ---- Matmul -------------------------------------------------------------------

TEST(Matmul, MatchesNaiveReference) {
  constexpr int kM = 17;
  constexpr int kK = 23;
  constexpr int kN = 9;
  std::vector<double> a(kM * kK);
  std::vector<double> b(kK * kN);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = 0.01 * (i % 37) - 0.1;
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 0.02 * (i % 29) - 0.2;
  std::vector<double> c(kM * kN);
  matmul(a, b, c, kM, kK, kN);
  for (int i = 0; i < kM; ++i) {
    for (int j = 0; j < kN; ++j) {
      double ref = 0.0;
      for (int k = 0; k < kK; ++k) {
        ref += a[static_cast<std::size_t>(i * kK + k)] *
               b[static_cast<std::size_t>(k * kN + j)];
      }
      ASSERT_NEAR(c[static_cast<std::size_t>(i * kN + j)], ref, 1e-12);
    }
  }
}

TEST(Matmul, IdentityIsNeutral) {
  constexpr int kN = 32;
  std::vector<double> a(kN * kN);
  std::vector<double> eye(kN * kN, 0.0);
  for (int i = 0; i < kN; ++i) {
    eye[static_cast<std::size_t>(i * kN + i)] = 1.0;
    for (int j = 0; j < kN; ++j) {
      a[static_cast<std::size_t>(i * kN + j)] = i * 100.0 + j;
    }
  }
  std::vector<double> c(kN * kN);
  matmul(a, eye, c, kN, kN, kN);
  for (std::size_t i = 0; i < c.size(); ++i) ASSERT_EQ(c[i], a[i]);
}

TEST(Matmul, ShapeMismatchThrows) {
  std::vector<double> a(6);
  std::vector<double> b(6);
  std::vector<double> c(5);
  EXPECT_THROW(matmul(a, b, c, 2, 3, 2), std::invalid_argument);
}

// ---- Distributed scaling drivers -------------------------------------------------

namespace {
MlTimingModel model() { return MlTimingModel{}; }
}  // namespace

TEST(Scaling, SequentialBaselinesMatchPaper) {
  // Paper (RI2): 112.9 s, 1059.45 s, 79.63 s.
  EXPECT_NEAR(knn_sequential_s(KnnBenchConfig{}, model()), 112.9, 6.0);
  EXPECT_NEAR(kmeans_sequential_s(KmeansBenchConfig{}, model()), 1059.45,
              60.0);
  EXPECT_NEAR(matmul_sequential_s(MatmulBenchConfig{}, model()), 79.63, 4.0);
}

TEST(Scaling, KnnSpeedupGrowsAndIsSubLinear) {
  const std::vector<int> procs{1, 4, 16};
  const ScalingCurve c =
      knn_scaling(net::ClusterSpec::ri2(), net::MpiTuning::mvapich2(),
                  KnnBenchConfig{}, model(), procs);
  ASSERT_EQ(c.points.size(), 3U);
  EXPECT_GT(c.points[1].speedup, c.points[0].speedup);
  EXPECT_GT(c.points[2].speedup, c.points[1].speedup);
  for (const auto& p : c.points) {
    EXPECT_LE(p.speedup, p.procs * 1.05);
  }
}

TEST(Scaling, KmeansBoundedByLargestK) {
  const std::vector<int> procs{224};
  KmeansBenchConfig cfg;
  const ScalingCurve c =
      kmeans_scaling(net::ClusterSpec::ri2(), net::MpiTuning::mvapich2(),
                     cfg, model(), procs);
  // The k_max fit alone bounds the speedup near sum(k)/k_max ~ 100.5.
  EXPECT_LT(c.points[0].speedup, 110.0);
  EXPECT_GT(c.points[0].speedup, 60.0);
}

TEST(Scaling, MatmulNearLinearAtModerateScale) {
  const std::vector<int> procs{1, 8};
  const ScalingCurve c =
      matmul_scaling(net::ClusterSpec::ri2(), net::MpiTuning::mvapich2(),
                     MatmulBenchConfig{}, model(), procs);
  EXPECT_GT(c.points[1].speedup, 6.0);
  EXPECT_LE(c.points[1].speedup, 8.4);
}

TEST(Scaling, PaperProcCountsShape) {
  const auto p = paper_proc_counts();
  EXPECT_EQ(p.front(), 1);
  EXPECT_EQ(p.back(), 224);
  EXPECT_TRUE(std::is_sorted(p.begin(), p.end()));
}
