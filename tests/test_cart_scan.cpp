// Tests for Scan/Exscan and the Cartesian topology machinery.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "mpi/cart.hpp"
#include "mpi/collectives.hpp"
#include "mpi/error.hpp"
#include "mpi/world.hpp"

using namespace ombx;
using mpi::Comm;
using mpi::ConstView;
using mpi::MutView;

namespace {
mpi::WorldConfig world_cfg(int nranks) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = nranks;
  wc.ppn = std::min(nranks, wc.cluster.topo.cores_per_node());
  return wc;
}

template <typename T>
ConstView cv(const std::vector<T>& v) {
  return ConstView{reinterpret_cast<const std::byte*>(v.data()),
                   v.size() * sizeof(T)};
}
template <typename T>
MutView mv(std::vector<T>& v) {
  return MutView{reinterpret_cast<std::byte*>(v.data()),
                 v.size() * sizeof(T)};
}
}  // namespace

// ---- Scan / Exscan ---------------------------------------------------------------

class ScanTest : public ::testing::TestWithParam<int> {};

TEST_P(ScanTest, InclusivePrefixSums) {
  const int n = GetParam();
  mpi::World w(world_cfg(n));
  w.run([](Comm& c) {
    const std::vector<std::int64_t> mine{c.rank() + 1, 10 * (c.rank() + 1)};
    std::vector<std::int64_t> out(2, -1);
    mpi::scan(c, cv(mine), mv(out), mpi::Datatype::kInt64, mpi::Op::kSum);
    const std::int64_t r = c.rank();
    EXPECT_EQ(out[0], (r + 1) * (r + 2) / 2);
    EXPECT_EQ(out[1], 10 * (r + 1) * (r + 2) / 2);
  });
}

TEST_P(ScanTest, ExclusivePrefixSums) {
  const int n = GetParam();
  mpi::World w(world_cfg(n));
  w.run([](Comm& c) {
    const std::vector<std::int64_t> mine{c.rank() + 1};
    std::vector<std::int64_t> out{-77};
    mpi::exscan(c, cv(mine), mv(out), mpi::Datatype::kInt64, mpi::Op::kSum);
    const std::int64_t r = c.rank();
    if (r == 0) {
      EXPECT_EQ(out[0], -77);  // rank 0's exscan result is undefined
    } else {
      EXPECT_EQ(out[0], r * (r + 1) / 2);
    }
  });
}

TEST_P(ScanTest, ScanWithMaxTracksRunningMaximum) {
  const int n = GetParam();
  mpi::World w(world_cfg(n));
  w.run([](Comm& c) {
    // Values bounce around; the running max is monotone.
    const std::vector<std::int32_t> mine{
        static_cast<std::int32_t>((c.rank() * 37) % 11)};
    std::vector<std::int32_t> out{-1};
    mpi::scan(c, cv(mine), mv(out), mpi::Datatype::kInt32, mpi::Op::kMax);
    std::int32_t expect = 0;
    for (int r = 0; r <= c.rank(); ++r) {
      expect = std::max(expect, static_cast<std::int32_t>((r * 37) % 11));
    }
    EXPECT_EQ(out[0], expect);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16));

// ---- dims_create --------------------------------------------------------------------

TEST(DimsCreate, BalancedFactorizations) {
  EXPECT_EQ(mpi::dims_create(16, 2), (std::vector<int>{4, 4}));
  EXPECT_EQ(mpi::dims_create(12, 2), (std::vector<int>{4, 3}));
  EXPECT_EQ(mpi::dims_create(7, 2), (std::vector<int>{7, 1}));
  EXPECT_EQ(mpi::dims_create(24, 3), (std::vector<int>{4, 3, 2}));
  EXPECT_EQ(mpi::dims_create(1, 2), (std::vector<int>{1, 1}));
  EXPECT_THROW((void)mpi::dims_create(0, 2), mpi::Error);
}

TEST(DimsCreate, VolumeAlwaysMatches) {
  for (int n = 1; n <= 64; ++n) {
    for (int d = 1; d <= 3; ++d) {
      const auto dims = mpi::dims_create(n, d);
      long vol = 1;
      for (const int v : dims) vol *= v;
      EXPECT_EQ(vol, n) << "n=" << n << " d=" << d;
    }
  }
}

// ---- CartComm -------------------------------------------------------------------------

TEST(Cart, CoordsRoundTrip) {
  mpi::World w(world_cfg(12));
  w.run([](Comm& c) {
    mpi::CartComm cart(c, {3, 4}, {false, false});
    for (int r = 0; r < c.size(); ++r) {
      const auto xy = cart.coords(r);
      EXPECT_EQ(cart.rank_at(xy), r);
    }
    // Row-major layout: rank 5 on a 3x4 grid is (1, 1).
    EXPECT_EQ(cart.coords(5), (std::vector<int>{1, 1}));
  });
}

TEST(Cart, OpenBoundariesReturnNull) {
  mpi::World w(world_cfg(6));
  w.run([](Comm& c) {
    mpi::CartComm cart(c, {2, 3}, {false, false});
    if (cart.coords(c.rank()) == std::vector<int>{0, 0}) {
      const auto [src, dst] = cart.shift(0, 1);
      EXPECT_EQ(src, mpi::CartComm::kNull);  // nothing above row 0
      EXPECT_NE(dst, mpi::CartComm::kNull);
    }
  });
}

TEST(Cart, PeriodicBoundariesWrap) {
  mpi::World w(world_cfg(6));
  w.run([](Comm& c) {
    mpi::CartComm cart(c, {2, 3}, {true, true});
    const auto me = cart.coords(c.rank());
    const auto [src, dst] = cart.shift(1, 1);
    EXPECT_NE(src, mpi::CartComm::kNull);
    EXPECT_NE(dst, mpi::CartComm::kNull);
    EXPECT_EQ(cart.coords(dst)[1], (me[1] + 1) % 3);
    EXPECT_EQ(cart.coords(src)[1], (me[1] + 2) % 3);
  });
}

TEST(Cart, RejectsBadGrids) {
  mpi::World w(world_cfg(6));
  EXPECT_THROW(
      w.run([](Comm& c) { mpi::CartComm cart(c, {2, 2}, {false, false}); }),
      mpi::Error);
  EXPECT_THROW(
      w.run([](Comm& c) { mpi::CartComm cart(c, {2, 3}, {false}); }),
      mpi::Error);
}

TEST(Cart, HaloExchangeRingPassesValues) {
  // 1-D periodic ring: everyone passes its rank to the right.
  constexpr int kN = 5;
  mpi::World w(world_cfg(kN));
  w.run([](Comm& c) {
    mpi::CartComm cart(c, {c.size()}, {true});
    const auto [src, dst] = cart.shift(0, 1);
    const std::vector<std::int32_t> mine{c.rank()};
    std::vector<std::int32_t> got{-1};
    cart.neighbor_sendrecv(cv(mine), dst, mv(got), src, 9);
    EXPECT_EQ(got[0], (c.rank() + c.size() - 1) % c.size());
  });
}

TEST(Cart, NullNeighborsAreSilentlySkipped) {
  mpi::World w(world_cfg(4));
  w.run([](Comm& c) {
    mpi::CartComm cart(c, {4}, {false});
    const auto [src, dst] = cart.shift(0, 1);
    const std::vector<std::int32_t> mine{c.rank() * 11};
    std::vector<std::int32_t> got{-1};
    cart.neighbor_sendrecv(cv(mine), dst, mv(got), src, 3);
    if (c.rank() == 0) {
      EXPECT_EQ(got[0], -1);  // no upstream neighbour
    } else {
      EXPECT_EQ(got[0], (c.rank() - 1) * 11);
    }
  });
}
