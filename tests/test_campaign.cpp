// Campaign engine tests: spec parsing/expansion determinism, the
// sequential stopping rule, result caching, and cross-run reproducibility
// of the aggregated table (the properties docs/running-benchmarks.md
// promises for `omb_run --campaign`).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>

#include "campaign/campaign.hpp"

using namespace ombx;

namespace {

campaign::Spec parse(const std::string& text) {
  std::istringstream in(text);
  return campaign::parse_spec(in);
}

/// Two-cell spec: one deterministic (drop = 0) and one fault-seeded.
const char* kSmallSpec =
    "# two-cell smoke campaign\n"
    "bench = latency\n"
    "np = 2\n"
    "drop = 0.0, 0.02\n"
    "min = 1\n"
    "max = 16\n"
    "iters = 3\n"
    "warmup = 1\n"
    "reps-min = 2\n"
    "reps-max = 3\n"
    "ci-rel = 0.2\n"
    "workers = 4\n";

std::string csv_of(const campaign::Outcome& out) {
  std::ostringstream os;
  campaign::to_table(out).write_csv(os);
  return os.str();
}

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const char* tag)
      : path(std::filesystem::temp_directory_path() /
             (std::string("ombx_campaign_test_") + tag)) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

}  // namespace

TEST(CampaignSpec, ParsesAxesListsAndScalars) {
  const campaign::Spec spec = parse(
      "bench = latency, bw\n"
      "cluster = frontera\n"
      "np = 2, 4\n"
      "drop = 0.0, 0.5\n"
      "reps-min = 2\n"
      "reps-max = 5\n"
      "seed = 7\n"
      "check = strict\n");
  EXPECT_EQ(spec.benches.size(), 2u);
  EXPECT_EQ(spec.nps.size(), 2u);
  EXPECT_EQ(spec.drops.size(), 2u);
  EXPECT_EQ(spec.reps_min, 2);
  EXPECT_EQ(spec.reps_max, 5);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_TRUE(spec.strict_check);
}

TEST(CampaignSpec, RejectsMalformedInput) {
  EXPECT_THROW((void)parse("bench latency\n"), std::invalid_argument);
  EXPECT_THROW((void)parse("frobnicate = 3\n"), std::invalid_argument);
  EXPECT_THROW((void)parse("drop = 1.5\n"), std::invalid_argument);
  EXPECT_THROW((void)parse("drop = nan\n"), std::invalid_argument);
  EXPECT_THROW((void)parse("np = 0\n"), std::invalid_argument);
  EXPECT_THROW((void)parse("np =\n"), std::invalid_argument);
  EXPECT_THROW((void)parse("reps-min = 4\nreps-max = 2\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse("min = 32\nmax = 16\n"), std::invalid_argument);
  EXPECT_THROW((void)parse("check = maybe\n"), std::invalid_argument);
}

TEST(CampaignExpand, DeterministicOrderAndDistinctHashes) {
  const campaign::Spec spec = parse(
      "bench = latency, allreduce\n"
      "np = 2, 4\n"
      "drop = 0.0, 0.1\n");
  const auto a = campaign::expand(spec);
  const auto b = campaign::expand(spec);
  ASSERT_EQ(a.size(), 8u);  // 2 benches x 2 np x 2 drops
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key(), b[i].key());
    EXPECT_EQ(a[i].config_hash, b[i].config_hash);
  }
  // Every cell has a distinct key, hence (FNV-1a) a distinct hash.
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      EXPECT_NE(a[i].key(), a[j].key());
      EXPECT_NE(a[i].config_hash, a[j].config_hash);
    }
  }
  // bench is the outermost axis, drop the innermost.
  EXPECT_EQ(a[0].bench, a[3].bench);
  EXPECT_NE(a[0].bench, a[4].bench);
  EXPECT_NE(a[0].drop, a[1].drop);
}

TEST(CampaignExpand, UnknownNamesFailBeforeAnyRun) {
  EXPECT_THROW((void)campaign::expand(parse("bench = warpdrive\n")),
               std::invalid_argument);
  EXPECT_THROW((void)campaign::expand(parse("cluster = atlantis\n")),
               std::invalid_argument);
  EXPECT_THROW((void)campaign::expand(parse("mpi = nolib\n")),
               std::invalid_argument);
}

TEST(CampaignRun, DoubleRunIsByteIdentical) {
  const campaign::Spec spec = parse(kSmallSpec);
  const std::string first = csv_of(campaign::run(spec));
  const std::string second = csv_of(campaign::run(spec));
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second)
      << "same spec + same binary must aggregate to identical bytes";
}

TEST(CampaignRun, StoppingRuleConvergesAndHonorsBudget) {
  const campaign::Spec spec = parse(kSmallSpec);
  const campaign::Outcome out = campaign::run(spec);
  ASSERT_EQ(out.results.size(), 2u);
  // The deterministic cell (drop = 0) has zero variance across reps, so
  // the CI collapses at reps-min; no repetition budget may be exceeded.
  const auto& det = out.results[0];
  EXPECT_EQ(det.cell.drop, 0.0);
  EXPECT_EQ(det.reps, spec.reps_min);
  for (const auto& res : out.results) {
    EXPECT_GE(res.reps, spec.reps_min);
    EXPECT_LE(res.reps, spec.reps_max);
    EXPECT_EQ(res.reps_failed, 0);
    ASSERT_FALSE(res.rows.empty());
    for (const auto& row : res.rows) {
      EXPECT_EQ(row.summary.n, static_cast<std::size_t>(res.reps));
      EXPECT_TRUE(std::isfinite(row.summary.mean));
      EXPECT_TRUE(std::isfinite(row.summary.median));
      EXPECT_TRUE(std::isfinite(row.summary.ci_low));
      EXPECT_LE(row.summary.ci_low, row.summary.ci_high);
      EXPECT_LE(row.summary.min, row.summary.max);
    }
  }
  EXPECT_EQ(out.counters.reps_failed, 0u);
  EXPECT_EQ(out.counters.cells_total, 2u);
  EXPECT_EQ(out.counters.cells_run, 2u);
}

TEST(CampaignRun, CacheHitsSkipExecutionAndPreserveBytes) {
  TempDir dir("cache");
  campaign::Spec spec = parse(kSmallSpec);
  spec.cache_dir = dir.path.string();
  const campaign::Outcome cold = campaign::run(spec);
  EXPECT_EQ(cold.counters.cells_run, 2u);
  EXPECT_EQ(cold.counters.cells_cached, 0u);
  const campaign::Outcome warm = campaign::run(spec);
  EXPECT_EQ(warm.counters.cells_run, 0u);
  EXPECT_EQ(warm.counters.cells_cached, 2u);
  EXPECT_EQ(warm.counters.reps_run, 0u);
  for (const auto& res : warm.results) EXPECT_TRUE(res.from_cache);
  EXPECT_EQ(csv_of(cold), csv_of(warm))
      << "cached cells must render the exact bytes of the original run";
}

TEST(CampaignRun, CacheMissesWhenMeasurementScalarsChange) {
  TempDir dir("cache_scalars");
  campaign::Spec spec = parse(kSmallSpec);
  spec.cache_dir = dir.path.string();
  const campaign::Outcome cold = campaign::run(spec);
  EXPECT_EQ(cold.counters.cells_run, 2u);
  // Same axes, different iteration count: the measured numbers change,
  // so the same cache dir must not serve the old cells.
  campaign::Spec more_iters = spec;
  more_iters.iterations += 1;
  const campaign::Outcome rerun = campaign::run(more_iters);
  EXPECT_EQ(rerun.counters.cells_run, 2u);
  EXPECT_EQ(rerun.counters.cells_cached, 0u);
  // Every measurement scalar is part of the config hash (the cache and
  // manifest identity), not just the axis values.
  const std::uint64_t base = campaign::expand(spec)[0].config_hash;
  const auto varied = [&](void (*mutate)(campaign::Spec&)) {
    campaign::Spec v = spec;
    mutate(v);
    return campaign::expand(v)[0].config_hash;
  };
  EXPECT_NE(base, varied([](campaign::Spec& v) { v.iterations += 1; }));
  EXPECT_NE(base, varied([](campaign::Spec& v) { v.warmup += 1; }));
  EXPECT_NE(base, varied([](campaign::Spec& v) { v.strict_check = true; }));
  EXPECT_NE(base, varied([](campaign::Spec& v) { v.reps_min += 1; }));
  EXPECT_NE(base, varied([](campaign::Spec& v) { v.reps_max += 1; }));
  EXPECT_NE(base, varied([](campaign::Spec& v) { v.ci_rel = 0.11; }));
}

TEST(CampaignRun, CacheRoundTripsSingleRepNaNFields) {
  // reps-max = 1 leaves variance and the CI NaN; those must survive the
  // cache round-trip (istream >> rejects "nan", which made such cells
  // permanent silent misses).
  TempDir dir("cache_nan");
  campaign::Spec spec = parse(
      "bench = latency\n"
      "np = 2\n"
      "min = 1\n"
      "max = 4\n"
      "iters = 2\n"
      "warmup = 1\n"
      "reps-min = 1\n"
      "reps-max = 1\n");
  spec.cache_dir = dir.path.string();
  const campaign::Outcome cold = campaign::run(spec);
  ASSERT_EQ(cold.counters.cells_run, 1u);
  ASSERT_FALSE(cold.results[0].rows.empty());
  EXPECT_TRUE(std::isnan(cold.results[0].rows[0].summary.variance));
  const campaign::Outcome warm = campaign::run(spec);
  EXPECT_EQ(warm.counters.cells_run, 0u);
  EXPECT_EQ(warm.counters.cells_cached, 1u);
  EXPECT_EQ(csv_of(cold), csv_of(warm));
}

TEST(CampaignRun, TruncatedCacheFileReadsAsMissNotPartialResult) {
  TempDir dir("cache_trunc");
  campaign::Spec spec = parse(kSmallSpec);
  spec.cache_dir = dir.path.string();
  (void)campaign::run(spec);
  // Chop the last line off every cache file, simulating a crash mid-write
  // (the row-count header must then reject the well-formed prefix).
  for (const auto& ent : std::filesystem::directory_iterator(dir.path)) {
    std::ifstream in(ent.path());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(text.size(), 1u);
    const auto cut = text.find_last_of('\n', text.size() - 2);
    ASSERT_NE(cut, std::string::npos);
    std::ofstream(ent.path(), std::ios::trunc) << text.substr(0, cut + 1);
  }
  const campaign::Outcome rerun = campaign::run(spec);
  EXPECT_EQ(rerun.counters.cells_run, 2u);
  EXPECT_EQ(rerun.counters.cells_cached, 0u);
}

TEST(CampaignRun, StrictCheckerCleanUnderConcurrentWorlds) {
  // Several cells across 4 workers, every world running with the strict
  // checker armed: any matching/ordering violation in the substrate under
  // concurrency aborts the rep and would show up as reps_failed.
  campaign::Spec spec = parse(
      "bench = allreduce, bcast\n"  // collectives: valid at every np
      "np = 2, 4\n"
      "drop = 0.0, 0.01\n"
      "min = 1\n"
      "max = 16\n"
      "iters = 2\n"
      "warmup = 1\n"
      "reps-min = 2\n"
      "reps-max = 2\n"
      "workers = 4\n"
      "check = strict\n");
  const campaign::Outcome out = campaign::run(spec);
  EXPECT_EQ(out.counters.cells_total, 8u);
  EXPECT_EQ(out.counters.reps_failed, 0u)
      << "strict checker flagged a violation under concurrent worlds";
  for (const auto& res : out.results) {
    EXPECT_EQ(res.reps_failed, 0);
    EXPECT_FALSE(res.rows.empty());
  }
}

TEST(CampaignRun, InfeasibleCellYieldsNaNRowNotAbort) {
  // osu_latency is pairwise-only; at np = 4 every repetition fails.  The
  // campaign must absorb that as a failed cell (explicit NaN row, zero
  // successful reps) instead of tearing down the whole sweep.
  const campaign::Spec spec = parse(
      "bench = latency\n"
      "np = 4\n"
      "iters = 2\n"
      "warmup = 1\n"
      "reps-min = 2\n"
      "reps-max = 2\n");
  const campaign::Outcome out = campaign::run(spec);
  ASSERT_EQ(out.results.size(), 1u);
  EXPECT_EQ(out.results[0].reps, 0);
  EXPECT_EQ(out.results[0].reps_failed, 2);
  EXPECT_EQ(out.counters.reps_failed, 2u);
  // The rendered table still carries a row for the cell, marked NaN.
  std::ostringstream os;
  campaign::to_table(out).write_csv(os);
  EXPECT_NE(os.str().find("nan"), std::string::npos);
}

TEST(CampaignTable, CarriesManifestColumns) {
  const campaign::Spec spec = parse(kSmallSpec);
  const campaign::Outcome out = campaign::run(spec);
  std::ostringstream os;
  campaign::to_table(out).write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("Seed,Config,SHA"), std::string::npos);
  EXPECT_NE(csv.find(campaign::git_sha()), std::string::npos);
  // The manifest seed is the cell's base seed from the spec.
  EXPECT_NE(csv.find(",42,"), std::string::npos);
}

TEST(CampaignCkptAxis, ParsesExpandsAndStampsTheManifest) {
  const campaign::Spec spec = parse(
      "bench = allreduce\n"
      "np = 4\n"
      "ckpt-interval = 0, 80\n"
      "iters = 3\n"
      "warmup = 1\n"
      "min = 1\n"
      "max = 16\n"
      "reps-min = 2\n"
      "reps-max = 2\n");
  ASSERT_EQ(spec.ckpt_intervals.size(), 2u);

  // ckpt-interval is the innermost axis and part of the cell key, so the
  // two cells are distinct cache identities.
  const auto cells = campaign::expand(spec);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_DOUBLE_EQ(cells[0].ckpt_interval, 0.0);
  EXPECT_DOUBLE_EQ(cells[1].ckpt_interval, 80.0);
  EXPECT_NE(cells[0].key(), cells[1].key());
  EXPECT_NE(cells[0].config_hash, cells[1].config_hash);

  const campaign::Outcome out = campaign::run(spec);
  std::ostringstream os;
  campaign::to_table(out).write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find(",Ckpt,"), std::string::npos);
  EXPECT_NE(csv.find(",80.0000,"), std::string::npos);
  // The checkpointing cell pays the epochs in virtual time: its mean
  // latency must differ from the ckpt-off cell's.
  ASSERT_EQ(out.results.size(), 2u);
  ASSERT_FALSE(out.results[0].rows.empty());
  ASSERT_FALSE(out.results[1].rows.empty());
  EXPECT_NE(out.results[0].rows.back().summary.mean,
            out.results[1].rows.back().summary.mean);
}

TEST(CampaignCkptAxis, RejectsNonCollectiveBenchesAndBadValues) {
  // A live ckpt axis on a point-to-point bench would silently measure
  // nothing — expand() must refuse it up front.
  EXPECT_THROW(
      (void)campaign::expand(parse("bench = latency\nckpt-interval = 50\n")),
      std::invalid_argument);
  // ckpt-interval = 0 (off) combines with anything.
  EXPECT_NO_THROW(
      (void)campaign::expand(parse("bench = latency\nckpt-interval = 0\n")));
  EXPECT_THROW((void)parse("ckpt-interval = -5\n"), std::invalid_argument);
  EXPECT_THROW((void)parse("ckpt-interval = nan\n"), std::invalid_argument);
  EXPECT_THROW((void)parse("ckpt-interval =\n"), std::invalid_argument);
}
