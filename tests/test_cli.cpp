// omb_run command-line hardening: malformed numeric flags must be
// rejected with a clear message instead of being prefix-parsed into
// nonsense (std::stoi("3x@100") == 3).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "bench_suite/cli.hpp"

using namespace ombx;
using bench_suite::CliOptions;

namespace {

CliOptions parse(const std::vector<std::string>& args) {
  std::vector<const char*> argv = {"omb_run"};
  for (const std::string& a : args) argv.push_back(a.c_str());
  return bench_suite::parse_cli(static_cast<int>(argv.size()), argv.data());
}

/// The flag line parses and the error message names the offending flag.
void expect_reject(const std::vector<std::string>& args,
                   const std::string& needle) {
  try {
    (void)parse(args);
    FAIL() << "expected rejection of:" << [&] {
      std::string s;
      for (const auto& a : args) s += " " + a;
      return s;
    }();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

}  // namespace

TEST(Cli, ValidFullLineParses) {
  const CliOptions o = parse({"latency", "--cluster", "stampede2", "--mpi",
                              "intelmpi", "--mode", "omb-c", "--buffer",
                              "bytearray", "--nranks", "8", "--ppn", "4",
                              "--min", "2", "--max", "1024", "--iters", "5",
                              "--warmup", "1", "--window", "32", "--csv",
                              "--fault-seed", "17", "--kill", "3@1500.5",
                              "--drop", "0.25", "--validate"});
  EXPECT_EQ(o.bench, "latency");
  EXPECT_EQ(o.cfg.cluster.name, "stampede2");
  EXPECT_EQ(o.cfg.nranks, 8);
  EXPECT_EQ(o.cfg.ppn, 4);
  EXPECT_EQ(o.cfg.opts.min_size, 2u);
  EXPECT_EQ(o.cfg.opts.max_size, 1024u);
  EXPECT_EQ(o.cfg.opts.iterations, 5);
  EXPECT_EQ(o.cfg.opts.warmup, 1);
  EXPECT_EQ(o.cfg.opts.window_size, 32);
  EXPECT_TRUE(o.csv);
  EXPECT_TRUE(o.cfg.opts.validate);
  EXPECT_EQ(o.cfg.fault.seed, 17u);
  ASSERT_EQ(o.cfg.fault.kills.size(), 1u);
  EXPECT_EQ(o.cfg.fault.kills[0].rank, 3);
  EXPECT_DOUBLE_EQ(o.cfg.fault.kills[0].at_time_us, 1500.5);
  EXPECT_DOUBLE_EQ(o.cfg.fault.drop.probability, 0.25);
  EXPECT_FALSE(o.explore);
}

TEST(Cli, MalformedKillSpecsAreRejected) {
  expect_reject({"latency", "--kill", "3x@100"}, "--kill");
  expect_reject({"latency", "--kill", "@100"}, "--kill");
  expect_reject({"latency", "--kill", "3@"}, "--kill");
  expect_reject({"latency", "--kill", "3@abc"}, "--kill");
  expect_reject({"latency", "--kill", "3@12zz"}, "--kill");
  expect_reject({"latency", "--kill", "-1@100"}, "--kill");
  expect_reject({"latency", "--kill", "3@-5"}, "--kill");
  expect_reject({"latency", "--kill"}, "needs a value");
}

TEST(Cli, KillRankMustFitTheWorld) {
  expect_reject({"latency", "--nranks", "4", "--kill", "5@100"},
                "out of range");
  // Order independence: the bound is checked after the whole line.
  expect_reject({"latency", "--kill", "5@100", "--nranks", "4"},
                "out of range");
  const CliOptions ok = parse({"latency", "--nranks", "8", "--kill", "5@100"});
  EXPECT_EQ(ok.cfg.fault.kills[0].rank, 5);
}

TEST(Cli, MalformedFaultSeedIsRejected) {
  expect_reject({"latency", "--fault-seed", "-1"}, "--fault-seed");
  expect_reject({"latency", "--fault-seed", "abc"}, "--fault-seed");
  expect_reject({"latency", "--fault-seed", "12junk"}, "--fault-seed");
  expect_reject({"latency", "--fault-seed", ""}, "--fault-seed");
}

TEST(Cli, NumericFlagsRejectPartialParses) {
  expect_reject({"latency", "--nranks", "2x"}, "--nranks");
  expect_reject({"latency", "--nranks", "0"}, "--nranks");
  expect_reject({"latency", "--iters", "ten"}, "--iters");
  expect_reject({"latency", "--drop", "1.5"}, "--drop");
  expect_reject({"latency", "--drop", "-0.1"}, "--drop");
  expect_reject({"latency", "--drop", "0.5oops"}, "--drop");
}

TEST(Cli, NonFiniteAndExoticFloatSpellingsAreRejected) {
  // std::stod happily accepts "nan", "inf" and hex floats ("0x1p3" == 8.0);
  // none of them is a sane probability or threshold on a benchmark line.
  expect_reject({"latency", "--drop", "nan"}, "--drop");
  expect_reject({"latency", "--drop", "NaN"}, "--drop");
  expect_reject({"latency", "--drop", "inf"}, "--drop");
  expect_reject({"latency", "--drop", "-inf"}, "--drop");
  expect_reject({"latency", "--drop", "infinity"}, "--drop");
  expect_reject({"latency", "--drop", "0x1p-4"}, "--drop");
  expect_reject({"latency", "--drop", "0x.8p0"}, "--drop");
  expect_reject({"latency", "--drop", ""}, "--drop");
}

TEST(Cli, CampaignFlagsParse) {
  const CliOptions o =
      parse({"--campaign", "sweep.spec", "--campaign-workers", "8", "--csv"});
  EXPECT_EQ(o.campaign_spec, "sweep.spec");
  EXPECT_EQ(o.campaign_workers, 8);
  EXPECT_TRUE(o.csv);
  EXPECT_TRUE(o.bench.empty());

  // A campaign drives the spec file; a benchmark name alongside it is a
  // contradiction, as is a campaign-less line with neither.
  expect_reject({"latency", "--campaign", "sweep.spec"}, "--campaign");
  expect_reject({"--campaign-workers", "4"}, "benchmark name");
  expect_reject({"--campaign", "sweep.spec", "--campaign-workers", "0"},
                "--campaign-workers");
  expect_reject({"--campaign"}, "needs a value");
}

TEST(Cli, UnknownOptionIsRejected) {
  expect_reject({"latency", "--frobnicate"}, "unknown option");
}

TEST(Cli, ExploreFlagsParse) {
  const CliOptions o =
      parse({"allreduce", "--ft", "--nranks", "4", "--kill", "3@400",
             "--explore", "--explore-budget", "16", "--explore-mode", "fuzz",
             "--explore-out", "repro.sched"});
  EXPECT_TRUE(o.explore);
  EXPECT_EQ(o.explore_budget, 16);
  EXPECT_EQ(o.explore_mode, "fuzz");
  EXPECT_EQ(o.explore_out, "repro.sched");
  EXPECT_TRUE(o.ft_mode);

  expect_reject({"latency", "--explore-mode", "random"}, "--explore-mode");
  expect_reject({"latency", "--explore-budget", "0"}, "--explore-budget");
  expect_reject(
      {"latency", "--explore", "--replay-schedule", "f.sched"},
      "mutually exclusive");
}

TEST(Cli, ListAndHelpShortCircuit) {
  EXPECT_TRUE(parse({"--list"}).list);
  EXPECT_TRUE(parse({"--help"}).help);
  EXPECT_TRUE(parse({"latency", "--help"}).help);
}
