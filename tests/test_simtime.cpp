// Unit tests for the virtual clock, deterministic RNG and work pricing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "simtime/clock.hpp"
#include "simtime/rng.hpp"
#include "simtime/work.hpp"

namespace st = ombx::simtime;

TEST(SimClock, StartsAtZero) {
  st::SimClock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

TEST(SimClock, AdvanceAccumulates) {
  st::SimClock c;
  c.advance(1.5);
  c.advance(2.5);
  EXPECT_DOUBLE_EQ(c.now(), 4.0);
}

TEST(SimClock, AdvanceToFuture) {
  st::SimClock c;
  const double waited = c.advance_to(10.0);
  EXPECT_DOUBLE_EQ(waited, 10.0);
  EXPECT_DOUBLE_EQ(c.now(), 10.0);
}

TEST(SimClock, AdvanceToPastIsNoOp) {
  st::SimClock c(20.0);
  const double waited = c.advance_to(10.0);
  EXPECT_DOUBLE_EQ(waited, 0.0);
  EXPECT_DOUBLE_EQ(c.now(), 20.0);
}

TEST(SimClock, ResetRestoresOrigin) {
  st::SimClock c;
  c.advance(99.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

TEST(SimClock, ConversionHelpers) {
  EXPECT_DOUBLE_EQ(st::us_to_ms(1500.0), 1.5);
  EXPECT_DOUBLE_EQ(st::us_to_s(2e6), 2.0);
}

TEST(WallTimer, MeasuresElapsedTime) {
  st::WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(t.elapsed_us(), 0.0);
}

TEST(Rng, DeterministicAcrossInstances) {
  st::Xoshiro256 a(42);
  st::Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  st::Xoshiro256 a(1);
  st::Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  st::Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  st::Xoshiro256 rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowCoversRangeUniformly) {
  st::Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.below(10);
    EXPECT_LT(v, 10U);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10U);
}

TEST(Rng, NormalHasSaneMoments) {
  st::Xoshiro256 rng(10);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(SplitMix, ExpandsSeedsDeterministically) {
  st::SplitMix64 a(123);
  st::SplitMix64 b(123);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), st::SplitMix64(124).next());
}

TEST(ComputeModel, FlopPricing) {
  st::ComputeModel m{.flops_per_us = 1000.0, .bytes_per_us = 500.0};
  EXPECT_DOUBLE_EQ(m.flop_time(2000.0), 2.0);
  EXPECT_DOUBLE_EQ(m.byte_time(1000.0), 2.0);
}

TEST(WorkCounter, AccumulatesAndPrices) {
  st::WorkCounter w;
  w.add_flops(100.0);
  w.add_flops(300.0);
  w.add_bytes(50.0);
  EXPECT_DOUBLE_EQ(w.flops(), 400.0);
  EXPECT_DOUBLE_EQ(w.bytes(), 50.0);
  st::ComputeModel m{.flops_per_us = 100.0, .bytes_per_us = 50.0};
  EXPECT_DOUBLE_EQ(w.priced(m), 4.0 + 1.0);
  w.reset();
  EXPECT_DOUBLE_EQ(w.priced(m), 0.0);
}
