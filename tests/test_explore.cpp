// Schedule-space exploration tests: reproducer file round-trips,
// record/replay identity, forced-divergence bookkeeping, the DPOR-vs-naive
// schedule count, seeded-race discovery with shrinking, and schedule
// identity in deadlock diagnostics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "explore/explore.hpp"
#include "explore/explorer.hpp"
#include "mpi/collectives.hpp"
#include "mpi/error.hpp"
#include "mpi/world.hpp"

using namespace ombx;
using mpi::Comm;

namespace {

constexpr int kData = 5;
constexpr int kToken = 6;
constexpr int kGo = 7;

mpi::WorldConfig small_world(int nranks) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = nranks;
  wc.ppn = 1;
  return wc;
}

mpi::ConstView cv(const std::vector<std::byte>& v) {
  return mpi::ConstView{v.data(), v.size(), net::MemSpace::kHost};
}
mpi::MutView mv(std::vector<std::byte>& v) {
  return mpi::MutView{v.data(), v.size(), net::MemSpace::kHost};
}

/// Four ranks, two independent wildcard races.  Ranks 1 and 2 each
/// receive one message from rank 0 and one from rank 3 through
/// ANY_SOURCE; the go chain guarantees both are queued before either
/// receiver decides, so every run has exactly two binary decisions:
/// 2 x 2 = 4 distinct match outcomes.
struct TwoReceiverRace {
  std::atomic<int> first1{-1};
  std::atomic<int> first2{-1};

  void operator()(Comm& c) {
    std::vector<std::byte> buf(8);
    std::vector<std::byte> tmp(8);
    if (c.rank() == 0) {
      c.send(cv(buf), 1, kData);
      c.send(cv(buf), 2, kData);
      c.send(cv(buf), 3, kToken);
    } else if (c.rank() == 3) {
      (void)c.recv(mv(tmp), 0, kToken);
      c.send(cv(buf), 1, kData);
      c.send(cv(buf), 2, kData);
      c.send(cv(buf), 1, kGo);
      c.send(cv(buf), 2, kGo);
    } else {
      (void)c.recv(mv(tmp), 3, kGo);
      const mpi::Status first = c.recv(mv(tmp), mpi::kAnySource, kData);
      (void)c.recv(mv(tmp), mpi::kAnySource, kData);
      (c.rank() == 1 ? first1 : first2)
          .store(first.source, std::memory_order_relaxed);
    }
  }
};

}  // namespace

// ---- Reproducer files -------------------------------------------------------

TEST(ScheduleFile, RoundTripPreservesEveryField) {
  explore::Schedule s;
  s.pins = {{1, 0, 2, 5}, {1, 1, 0, 5}, {3, 7, 4, 11}};
  s.nranks = 4;
  s.fuzz_seed = 42;
  s.note = "minimal divergences: 1; some failure";
  std::ostringstream os;
  explore::write_schedule(os, s);
  std::istringstream is(os.str());
  const explore::Schedule r = explore::parse_schedule(is);
  ASSERT_EQ(r.pins.size(), s.pins.size());
  for (std::size_t i = 0; i < s.pins.size(); ++i) {
    EXPECT_EQ(r.pins[i].rank, s.pins[i].rank);
    EXPECT_EQ(r.pins[i].index, s.pins[i].index);
    EXPECT_EQ(r.pins[i].src, s.pins[i].src);
    EXPECT_EQ(r.pins[i].tag, s.pins[i].tag);
  }
  EXPECT_EQ(r.nranks, s.nranks);
  EXPECT_EQ(r.fuzz_seed, s.fuzz_seed);
  EXPECT_EQ(r.note, s.note);
}

TEST(ScheduleFile, MalformedInputThrows) {
  const auto parse = [](const std::string& text) {
    std::istringstream is(text);
    return explore::parse_schedule(is);
  };
  EXPECT_THROW((void)parse("not a reproducer\n"), std::invalid_argument);
  EXPECT_THROW((void)parse("# omb-x schedule reproducer v1\npin 1 0 2\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse("# omb-x schedule reproducer v1\npin 1 x 2 5\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse("# omb-x schedule reproducer v1\nfrobnicate 3\n"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)parse("# omb-x schedule reproducer v1\nmeta nranks -3\n"),
      std::invalid_argument);
}

TEST(ScheduleOracle, ArmRejectsBadPins) {
  explore::ScheduleOracle oracle(2);
  explore::Schedule out_of_range;
  out_of_range.pins = {{5, 0, 0, 0}};
  EXPECT_THROW(oracle.arm(out_of_range), std::invalid_argument);
  explore::Schedule duplicate;
  duplicate.pins = {{1, 0, 0, 1}, {1, 0, 0, 2}};
  EXPECT_THROW(oracle.arm(duplicate), std::invalid_argument);
}

// ---- Record / replay --------------------------------------------------------

TEST(RecordReplay, FullPinningReExecutesTheRecordedRun) {
  auto race = std::make_shared<TwoReceiverRace>();
  const explore::RunFn run = explore::make_world_runner(
      small_world(4), [race](Comm& c) { (*race)(c); });

  const explore::RunResult rec = run(explore::Schedule{});
  ASSERT_FALSE(rec.failed) << rec.what;
  const int rec_first1 = race->first1.load();
  const int rec_first2 = race->first2.load();

  const explore::Schedule pins = explore::pin_everything(rec.log);
  EXPECT_EQ(pins.pins.size(), 4u);  // two wildcard receives per receiver

  const explore::RunResult rep = run(pins);
  ASSERT_FALSE(rep.failed) << rep.what;
  EXPECT_FALSE(rep.diverged);
  EXPECT_EQ(race->first1.load(), rec_first1);
  EXPECT_EQ(race->first2.load(), rec_first2);

  // The replayed decision stream is identical to the recording.
  ASSERT_EQ(rep.log.size(), rec.log.size());
  for (std::size_t i = 0; i < rec.log.size(); ++i) {
    EXPECT_EQ(rep.log[i].rank, rec.log[i].rank);
    EXPECT_EQ(rep.log[i].index, rec.log[i].index);
    EXPECT_EQ(rep.log[i].src, rec.log[i].src);
    EXPECT_EQ(rep.log[i].tag, rec.log[i].tag);
    EXPECT_TRUE(rep.log[i].forced);  // every decision was pinned
  }
}

TEST(RecordReplay, ForcedAlternateIsFlaggedDivergent) {
  auto race = std::make_shared<TwoReceiverRace>();
  const explore::RunFn run = explore::make_world_runner(
      small_world(4), [race](Comm& c) { (*race)(c); });

  // Force rank 1's first wildcard match to take rank 3's message.
  explore::Schedule s;
  s.pins = {{1, 0, 3, kData}};
  const explore::RunResult rr = run(s);
  ASSERT_FALSE(rr.failed) << rr.what;
  EXPECT_EQ(race->first1.load(), 3);
  EXPECT_EQ(race->first2.load(), 0);  // the unpinned race keeps its default

  bool saw_forced = false;
  for (const explore::Decision& d : rr.log) {
    if (d.rank == 1 && d.index == 0) {
      EXPECT_TRUE(d.forced);
      EXPECT_TRUE(d.divergent);  // min-seq default was rank 0's message
      ASSERT_EQ(d.candidates.size(), 2u);
      EXPECT_EQ(d.src, 3);
      saw_forced = true;
    }
  }
  EXPECT_TRUE(saw_forced);
}

// ---- DPOR vs naive enumeration ----------------------------------------------

TEST(Search, DporCoversAllOutcomesWithFewerRunsThanNaive) {
  const auto explore_with = [](explore::SearchMode mode, int& runs,
                               std::set<std::pair<int, int>>& outcomes) {
    auto race = std::make_shared<TwoReceiverRace>();
    const explore::RunFn inner = explore::make_world_runner(
        small_world(4), [race](Comm& c) { (*race)(c); });
    const explore::RunFn counted =
        [&, race](const explore::Schedule& s) -> explore::RunResult {
      explore::RunResult rr = inner(s);
      outcomes.insert({race->first1.load(), race->first2.load()});
      return rr;
    };
    explore::SearchConfig sc;
    sc.mode = mode;
    sc.budget = 64;
    const explore::SearchResult res = explore::search(counted, sc);
    EXPECT_TRUE(res.findings.empty());
    EXPECT_TRUE(res.exhausted);
    runs = res.runs;
  };

  int dpor_runs = 0;
  int naive_runs = 0;
  std::set<std::pair<int, int>> dpor_outcomes;
  std::set<std::pair<int, int>> naive_outcomes;
  explore_with(explore::SearchMode::kDpor, dpor_runs, dpor_outcomes);
  explore_with(explore::SearchMode::kNaive, naive_runs, naive_outcomes);

  // Both searches see every distinct match outcome (2 races x 2 choices),
  // but sleep-set pruning re-executes strictly fewer schedules.
  EXPECT_EQ(dpor_outcomes.size(), 4u);
  EXPECT_EQ(naive_outcomes, dpor_outcomes);
  EXPECT_EQ(dpor_runs, 4);
  EXPECT_EQ(naive_runs, 5);
  EXPECT_LT(dpor_runs, naive_runs);
}

// ---- Seeded-race discovery and shrinking ------------------------------------

TEST(Search, FindsSeededRaceAndEmitsAReplayableReproducer) {
  // The two-receiver race with a schedule-dependent assertion: rank 2's
  // first message "must" come from rank 0.  Clean under the default
  // schedule; one specific alternate breaks it.
  auto race = std::make_shared<TwoReceiverRace>();
  const explore::RunFn run =
      explore::make_world_runner(small_world(4), [race](Comm& c) {
        (*race)(c);
        if (c.rank() == 2 && race->first2.load() != 0) {
          throw std::runtime_error("coordinator assumption violated");
        }
      });

  ASSERT_FALSE(run(explore::Schedule{}).failed)
      << "the race must be invisible on the default schedule";

  explore::SearchConfig sc;
  sc.budget = 32;
  const explore::SearchResult res = explore::search(run, sc);
  ASSERT_EQ(res.findings.size(), 1u);
  const explore::Finding& f = res.findings.front();
  EXPECT_NE(f.what.find("coordinator assumption violated"), std::string::npos)
      << f.what;
  EXPECT_NE(f.schedule.note.find("minimal divergences: 1"), std::string::npos)
      << f.schedule.note;

  // The reproducer pins every decision: replaying it twice fails twice
  // with the identical diagnostic.
  const explore::RunResult r1 = run(f.schedule);
  const explore::RunResult r2 = run(f.schedule);
  EXPECT_TRUE(r1.failed);
  EXPECT_TRUE(r2.failed);
  EXPECT_EQ(r1.what, r2.what);
  EXPECT_EQ(r1.what, f.what);
  EXPECT_FALSE(r1.diverged);
}

TEST(Search, FuzzModeFindsTheRaceToo) {
  auto race = std::make_shared<TwoReceiverRace>();
  const explore::RunFn run =
      explore::make_world_runner(small_world(4), [race](Comm& c) {
        (*race)(c);
        if (c.rank() == 1 && race->first1.load() != 0) {
          throw std::runtime_error("fuzz-visible ordering bug");
        }
      });
  explore::SearchConfig sc;
  sc.mode = explore::SearchMode::kFuzz;
  sc.budget = 32;
  const explore::SearchResult res = explore::search(run, sc);
  ASSERT_EQ(res.findings.size(), 1u);
  EXPECT_FALSE(res.exhausted);  // fuzzing never proves exhaustion
  EXPECT_NE(res.findings.front().what.find("fuzz-visible ordering bug"),
            std::string::npos);
  // The fuzz finding is still a deterministic pin-list reproducer.
  const explore::RunResult rr = run(res.findings.front().schedule);
  EXPECT_TRUE(rr.failed);
  EXPECT_EQ(rr.what, res.findings.front().what);
}

// ---- Deadlock diagnostics ---------------------------------------------------

TEST(DeadlockIdentity, WatchdogNamesScheduleAndFaultSeed) {
  mpi::WorldConfig wc = small_world(2);
  wc.watchdog_poll_ms = 10.0;
  wc.oracle = std::make_shared<explore::ScheduleOracle>(2);
  explore::Schedule s;
  s.pins = {{0, 0, 1, 9}};
  wc.oracle->arm(s);
  mpi::World w(wc);
  try {
    w.run([](Comm& c) {
      std::vector<std::byte> buf(8);
      // Tag mismatch under a pinned schedule: silent deadlock.
      if (c.rank() == 0) {
        (void)c.recv(mv(buf), mpi::kAnySource, 9);  // never sent
      } else {
        (void)c.recv(mv(buf), 0, 2);
      }
    });
    FAIL() << "expected DeadlockError";
  } catch (const mpi::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("\nschedule: "), std::string::npos) << what;
    EXPECT_NE(what.find("fault-seed="), std::string::npos) << what;
    EXPECT_NE(what.find("schedule=pinned pins=1"), std::string::npos) << what;
    // strip_schedule_line removes exactly that identity, so deadlock
    // diagnostics compare equal across schedules during shrinking.
    const std::string stripped = explore::strip_schedule_line(what);
    EXPECT_EQ(stripped.find("schedule: "), std::string::npos) << stripped;
  }
}

TEST(DeadlockIdentity, DefaultScheduleIsNamedWithoutAnOracle) {
  mpi::WorldConfig wc = small_world(2);
  wc.watchdog_poll_ms = 10.0;
  mpi::World w(wc);
  try {
    w.run([](Comm& c) {
      std::vector<std::byte> buf(8);
      (void)c.recv(mv(buf), (c.rank() + 1) % c.size(), 0);
    });
    FAIL() << "expected DeadlockError";
  } catch (const mpi::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("schedule=default"), std::string::npos) << what;
  }
}
