// Tests for the simulated GPU device, the CUDA Array Interface adapters,
// and the unified buffer abstraction.
#include <gtest/gtest.h>

#include "buffers/buffer.hpp"
#include "gpu/device.hpp"
#include "gpu/libs.hpp"
#include "net/cluster.hpp"

using namespace ombx;

namespace {
gpu::Device make_device() {
  return gpu::Device(0, *net::ClusterSpec::ri2_gpu().gpu);
}
}  // namespace

TEST(Device, AllocationAccounting) {
  gpu::Device dev = make_device();
  EXPECT_EQ(dev.used_bytes(), 0U);
  {
    auto a = dev.allocate(1024);
    auto b = dev.allocate(2048);
    EXPECT_EQ(dev.used_bytes(), 3072U);
    EXPECT_NE(a.data(), nullptr);
    EXPECT_EQ(a.bytes(), 1024U);
  }
  EXPECT_EQ(dev.used_bytes(), 0U);  // RAII released
}

TEST(Device, OutOfMemoryThrowsAndRollsBack) {
  gpu::Device dev = make_device();
  auto big = dev.allocate(dev.capacity_bytes() - 16, /*synthetic=*/true);
  EXPECT_THROW((void)dev.allocate(1024, true), gpu::OutOfDeviceMemory);
  // The failed allocation must not leak reserved capacity.
  EXPECT_EQ(dev.used_bytes(), dev.capacity_bytes() - 16);
}

TEST(Device, SyntheticAllocationsHaveNoBacking) {
  gpu::Device dev = make_device();
  auto buf = dev.allocate(1 << 20, /*synthetic=*/true);
  EXPECT_EQ(buf.data(), nullptr);
  EXPECT_EQ(buf.bytes(), 1U << 20);
  EXPECT_EQ(dev.used_bytes(), 1U << 20);  // capacity still accounted
}

TEST(Device, MoveTransfersOwnership) {
  gpu::Device dev = make_device();
  auto a = dev.allocate(512);
  const gpu::DeviceBuffer b = std::move(a);
  EXPECT_EQ(b.bytes(), 512U);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing it
  EXPECT_EQ(dev.used_bytes(), 512U);
}

TEST(Device, CopyCostsAreOrdered) {
  gpu::Device dev = make_device();
  const std::size_t n = 1 << 20;
  // On-device copies are far faster than PCIe transfers.
  EXPECT_LT(dev.d2d_time(n), dev.h2d_time(n));
  EXPECT_LT(dev.d2d_time(n), dev.d2h_time(n));
  EXPECT_GT(dev.kernel_launch_time(), 0.0);
  EXPECT_GT(dev.event_sync_time(), 0.0);
}

TEST(GpuArray, ExportsCudaArrayInterface) {
  gpu::Device dev = make_device();
  const gpu::GpuArray arr = gpu::cupy_empty(dev, 4096);
  const gpu::CudaArrayInterface cai = arr.cuda_array_interface();
  EXPECT_EQ(cai.ptr, static_cast<const void*>(arr.data()));
  EXPECT_EQ(cai.version, 3);
  ASSERT_EQ(cai.shape.size(), 1U);
  EXPECT_EQ(cai.shape[0], 4096U);
  EXPECT_EQ(cai.typestr, "|u1");
}

TEST(GpuArray, FactoriesTagTheOwningLibrary) {
  gpu::Device dev = make_device();
  EXPECT_EQ(gpu::cupy_empty(dev, 8).lib(), gpu::GpuLib::kCupy);
  EXPECT_EQ(gpu::pycuda_empty(dev, 8).lib(), gpu::GpuLib::kPycuda);
  EXPECT_EQ(gpu::numba_device_array(dev, 8).lib(), gpu::GpuLib::kNumba);
  EXPECT_EQ(gpu::to_string(gpu::GpuLib::kNumba), "numba");
}

TEST(Buffers, KindPredicates) {
  using buffers::BufferKind;
  EXPECT_FALSE(buffers::is_gpu(BufferKind::kByteArray));
  EXPECT_FALSE(buffers::is_gpu(BufferKind::kNumpy));
  EXPECT_TRUE(buffers::is_gpu(BufferKind::kCupy));
  EXPECT_TRUE(buffers::is_gpu(BufferKind::kPycuda));
  EXPECT_TRUE(buffers::is_gpu(BufferKind::kNumba));
  EXPECT_EQ(buffers::gpu_lib_of(BufferKind::kNumba), gpu::GpuLib::kNumba);
  EXPECT_FALSE(buffers::gpu_lib_of(BufferKind::kNumpy).has_value());
}

TEST(Buffers, FactoryBuildsEveryHostKind) {
  for (const auto kind :
       {buffers::BufferKind::kByteArray, buffers::BufferKind::kNumpy}) {
    const auto b = buffers::make_buffer(kind, 128);
    EXPECT_EQ(b->kind(), kind);
    EXPECT_EQ(b->bytes(), 128U);
    EXPECT_NE(b->data(), nullptr);
    EXPECT_EQ(b->space(), net::MemSpace::kHost);
  }
}

TEST(Buffers, FactoryBuildsEveryGpuKind) {
  gpu::Device dev = make_device();
  for (const auto kind :
       {buffers::BufferKind::kCupy, buffers::BufferKind::kPycuda,
        buffers::BufferKind::kNumba}) {
    const auto b = buffers::make_buffer(kind, 256, &dev);
    EXPECT_EQ(b->kind(), kind);
    EXPECT_EQ(b->space(), net::MemSpace::kDevice);
    EXPECT_NE(b->data(), nullptr);
  }
  EXPECT_EQ(dev.used_bytes(), 0U);  // all released
}

TEST(Buffers, GpuKindWithoutDeviceThrows) {
  EXPECT_THROW((void)buffers::make_buffer(buffers::BufferKind::kCupy, 64),
               std::invalid_argument);
}

TEST(Buffers, FillVerifyRoundTrip) {
  const auto b = buffers::make_buffer(buffers::BufferKind::kNumpy, 1000);
  b->fill(0x42);
  EXPECT_TRUE(b->verify(0x42));
  EXPECT_FALSE(b->verify(0x43));
  EXPECT_TRUE(b->verify(0x42, 10));
}

TEST(Buffers, SyntheticBuffersVerifyTrivially) {
  const auto b = buffers::make_buffer(buffers::BufferKind::kNumpy, 1 << 20,
                                      nullptr, /*synthetic=*/true);
  EXPECT_EQ(b->data(), nullptr);
  EXPECT_EQ(b->bytes(), 1U << 20);
  b->fill(1);                   // no-op
  EXPECT_TRUE(b->verify(99));   // nothing to check
  const mpi::ConstView v = b->cview();
  EXPECT_EQ(v.data, nullptr);
  EXPECT_EQ(v.bytes, 1U << 20);
}

TEST(Buffers, ViewsReflectSpace) {
  gpu::Device dev = make_device();
  const auto b = buffers::make_buffer(buffers::BufferKind::kPycuda, 64, &dev);
  EXPECT_EQ(b->cview().space, net::MemSpace::kDevice);
  const auto h = buffers::make_buffer(buffers::BufferKind::kByteArray, 64);
  EXPECT_EQ(h->cview().space, net::MemSpace::kHost);
}

TEST(Buffers, NamesAreStable) {
  EXPECT_EQ(buffers::to_string(buffers::BufferKind::kByteArray),
            "bytearray");
  EXPECT_EQ(buffers::to_string(buffers::BufferKind::kCupy), "cupy");
}
