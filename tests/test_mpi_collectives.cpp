// Correctness tests for every collective, across algorithms, communicator
// sizes (power-of-two and not) and message sizes — including vector
// variants and synthetic-payload timing equivalence.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/collectives.hpp"
#include "mpi/error.hpp"
#include "mpi/world.hpp"

using namespace ombx;
using mpi::Comm;
using mpi::ConstView;
using mpi::MutView;

namespace {

mpi::WorldConfig world_cfg(int nranks) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = nranks;
  wc.ppn = std::min(nranks, wc.cluster.topo.cores_per_node());
  return wc;
}

template <typename T>
ConstView cv(const std::vector<T>& v) {
  return ConstView{reinterpret_cast<const std::byte*>(v.data()),
                   v.size() * sizeof(T)};
}
template <typename T>
MutView mv(std::vector<T>& v) {
  return MutView{reinterpret_cast<std::byte*>(v.data()),
                 v.size() * sizeof(T)};
}

}  // namespace

// ---- Barrier -----------------------------------------------------------------

class BarrierTest : public ::testing::TestWithParam<
                        std::tuple<int, net::BarrierAlgo>> {};

TEST_P(BarrierTest, SynchronizesClocks) {
  const auto [n, algo] = GetParam();
  mpi::World w(world_cfg(n));
  w.run([&, algo = algo](Comm& c) {
    // Stagger the ranks, then barrier: everyone must leave at a time >= the
    // slowest rank's entry time.
    c.clock().advance(10.0 * c.rank());
    mpi::barrier(c, algo);
    EXPECT_GE(c.now(), 10.0 * (c.size() - 1));
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BarrierTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7, 8, 16),
                       ::testing::Values(net::BarrierAlgo::kDissemination,
                                         net::BarrierAlgo::kBinomial)));

// ---- Bcast -------------------------------------------------------------------

class BcastTest
    : public ::testing::TestWithParam<
          std::tuple<int, std::size_t, int, net::BcastAlgo>> {};

TEST_P(BcastTest, DeliversRootPayload) {
  const auto [n, bytes, root, algo] = GetParam();
  if (root >= n) GTEST_SKIP();
  mpi::World w(world_cfg(n));
  w.run([&, bytes = bytes, root = root, algo = algo](Comm& c) {
    std::vector<std::uint8_t> buf(bytes, 0);
    if (c.rank() == root) {
      for (std::size_t i = 0; i < bytes; ++i) {
        buf[i] = static_cast<std::uint8_t>((i * 13 + 5) & 0xff);
      }
    }
    mpi::bcast(c, mv(buf), root, algo);
    for (std::size_t i = 0; i < bytes; ++i) {
      ASSERT_EQ(buf[i], static_cast<std::uint8_t>((i * 13 + 5) & 0xff))
          << "rank " << c.rank() << " byte " << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    AlgoSweep, BcastTest,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 16),
                       ::testing::Values(std::size_t{1}, std::size_t{1000},
                                         std::size_t{65536}),
                       ::testing::Values(0, 2),
                       ::testing::Values(net::BcastAlgo::kBinomial,
                                         net::BcastAlgo::kScatterAllgather,
                                         net::BcastAlgo::kLinear)));

// ---- Reduce / Allreduce --------------------------------------------------------

class ReduceTest : public ::testing::TestWithParam<
                       std::tuple<int, int, net::ReduceAlgo>> {};

TEST_P(ReduceTest, SumsAtRoot) {
  const auto [n, root, algo] = GetParam();
  if (root >= n) GTEST_SKIP();
  mpi::World w(world_cfg(n));
  w.run([&, n = n, root = root, algo = algo](Comm& c) {
    std::vector<std::int64_t> send(64);
    std::iota(send.begin(), send.end(), c.rank());
    std::vector<std::int64_t> recv(64, -1);
    mpi::reduce(c, cv(send), mv(recv), mpi::Datatype::kInt64, mpi::Op::kSum,
                root, algo);
    if (c.rank() == root) {
      for (std::size_t i = 0; i < recv.size(); ++i) {
        // sum over r of (r + i) = n*i + n*(n-1)/2
        const std::int64_t expect =
            static_cast<std::int64_t>(n) * static_cast<std::int64_t>(i) +
            static_cast<std::int64_t>(n) * (n - 1) / 2;
        ASSERT_EQ(recv[i], expect) << "element " << i;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    AlgoSweep, ReduceTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 7, 8, 16),
                       ::testing::Values(0, 3),
                       ::testing::Values(net::ReduceAlgo::kBinomial,
                                         net::ReduceAlgo::kLinear)));

class AllreduceTest : public ::testing::TestWithParam<
                          std::tuple<int, net::AllreduceAlgo>> {};

TEST_P(AllreduceTest, EveryRankGetsTheSum) {
  const auto [n, algo] = GetParam();
  mpi::World w(world_cfg(n));
  w.run([&, n = n, algo = algo](Comm& c) {
    std::vector<std::int32_t> send(37);  // odd count exercises remainders
    std::iota(send.begin(), send.end(), 3 * c.rank());
    std::vector<std::int32_t> recv(37, -1);
    mpi::allreduce(c, cv(send), mv(recv), mpi::Datatype::kInt32,
                   mpi::Op::kSum, algo);
    for (std::size_t i = 0; i < recv.size(); ++i) {
      const std::int32_t expect =
          static_cast<std::int32_t>(n * i) + 3 * n * (n - 1) / 2;
      ASSERT_EQ(recv[i], expect);
    }
  });
}

TEST_P(AllreduceTest, MinAndMax) {
  const auto [n, algo] = GetParam();
  mpi::World w(world_cfg(n));
  w.run([&, n = n, algo = algo](Comm& c) {
    std::vector<double> send{static_cast<double>(c.rank()),
                             static_cast<double>(-c.rank())};
    std::vector<double> mn(2);
    std::vector<double> mx(2);
    mpi::allreduce(c, cv(send), mv(mn), mpi::Datatype::kDouble,
                   mpi::Op::kMin, algo);
    mpi::allreduce(c, cv(send), mv(mx), mpi::Datatype::kDouble,
                   mpi::Op::kMax, algo);
    EXPECT_DOUBLE_EQ(mn[0], 0.0);
    EXPECT_DOUBLE_EQ(mn[1], static_cast<double>(-(n - 1)));
    EXPECT_DOUBLE_EQ(mx[0], static_cast<double>(n - 1));
    EXPECT_DOUBLE_EQ(mx[1], 0.0);
  });
}

INSTANTIATE_TEST_SUITE_P(
    AlgoSweep, AllreduceTest,
    ::testing::Combine(
        ::testing::Values(2, 3, 5, 8, 12, 16),
        ::testing::Values(net::AllreduceAlgo::kRecursiveDoubling,
                          net::AllreduceAlgo::kRing,
                          net::AllreduceAlgo::kReduceBcast)));

// ---- Gather / Scatter -----------------------------------------------------------

class GatherTest : public ::testing::TestWithParam<
                       std::tuple<int, int, net::GatherAlgo>> {};

TEST_P(GatherTest, CollectsInRankOrder) {
  const auto [n, root, algo] = GetParam();
  if (root >= n) GTEST_SKIP();
  mpi::World w(world_cfg(n));
  w.run([&, n = n, root = root, algo = algo](Comm& c) {
    std::vector<std::int32_t> send(5, c.rank() * 100);
    std::vector<std::int32_t> recv(static_cast<std::size_t>(5 * n), -1);
    mpi::gather(c, cv(send), c.rank() == root ? mv(recv) : MutView{}, root,
                algo);
    if (c.rank() == root) {
      for (int r = 0; r < n; ++r) {
        for (int i = 0; i < 5; ++i) {
          ASSERT_EQ(recv[static_cast<std::size_t>(r * 5 + i)], r * 100)
              << "block " << r;
        }
      }
    }
  });
}

TEST_P(GatherTest, ScatterDistributesInRankOrder) {
  const auto [n, root, algo] = GetParam();
  if (root >= n) GTEST_SKIP();
  mpi::World w(world_cfg(n));
  w.run([&, n = n, root = root, algo = algo](Comm& c) {
    std::vector<std::int32_t> send;
    if (c.rank() == root) {
      send.resize(static_cast<std::size_t>(3 * n));
      for (int r = 0; r < n; ++r) {
        for (int i = 0; i < 3; ++i) {
          send[static_cast<std::size_t>(3 * r + i)] = r * 10 + i;
        }
      }
    }
    std::vector<std::int32_t> recv(3, -1);
    mpi::scatter(c, c.rank() == root ? cv(send) : ConstView{}, mv(recv),
                 root, algo);
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(recv[static_cast<std::size_t>(i)], c.rank() * 10 + i);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    AlgoSweep, GatherTest,
    ::testing::Combine(::testing::Values(2, 3, 6, 8, 16),
                       ::testing::Values(0, 2),
                       ::testing::Values(net::GatherAlgo::kBinomial,
                                         net::GatherAlgo::kLinear)));

// ---- Allgather -------------------------------------------------------------------

class AllgatherTest : public ::testing::TestWithParam<
                          std::tuple<int, net::AllgatherAlgo>> {};

TEST_P(AllgatherTest, EveryRankSeesEveryBlock) {
  const auto [n, algo] = GetParam();
  if (algo == net::AllgatherAlgo::kRecursiveDoubling &&
      (n & (n - 1)) != 0) {
    GTEST_SKIP() << "recursive doubling requires power-of-two";
  }
  mpi::World w(world_cfg(n));
  w.run([&, n = n, algo = algo](Comm& c) {
    std::vector<std::int32_t> send(7, c.rank() + 1);
    std::vector<std::int32_t> recv(static_cast<std::size_t>(7 * n), -1);
    mpi::allgather(c, cv(send), mv(recv), algo);
    for (int r = 0; r < n; ++r) {
      for (int i = 0; i < 7; ++i) {
        ASSERT_EQ(recv[static_cast<std::size_t>(7 * r + i)], r + 1)
            << "rank " << c.rank() << " block " << r;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    AlgoSweep, AllgatherTest,
    ::testing::Combine(
        ::testing::Values(2, 3, 5, 8, 12, 16),
        ::testing::Values(net::AllgatherAlgo::kRing,
                          net::AllgatherAlgo::kBruck,
                          net::AllgatherAlgo::kRecursiveDoubling)));

// ---- Alltoall --------------------------------------------------------------------

class AlltoallTest : public ::testing::TestWithParam<
                         std::tuple<int, net::AlltoallAlgo>> {};

TEST_P(AlltoallTest, TransposesBlocks) {
  const auto [n, algo] = GetParam();
  mpi::World w(world_cfg(n));
  w.run([&, n = n, algo = algo](Comm& c) {
    // Block for destination d carries value rank*1000 + d.
    std::vector<std::int32_t> send(static_cast<std::size_t>(n) * 2);
    for (int d = 0; d < n; ++d) {
      send[static_cast<std::size_t>(2 * d)] = c.rank() * 1000 + d;
      send[static_cast<std::size_t>(2 * d + 1)] = -1;
    }
    std::vector<std::int32_t> recv(static_cast<std::size_t>(n) * 2, -7);
    mpi::alltoall(c, cv(send), mv(recv), algo);
    for (int s = 0; s < n; ++s) {
      ASSERT_EQ(recv[static_cast<std::size_t>(2 * s)],
                s * 1000 + c.rank());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    AlgoSweep, AlltoallTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 7, 8, 16),
                       ::testing::Values(net::AlltoallAlgo::kPairwise,
                                         net::AlltoallAlgo::kLinear)));

// ---- Reduce_scatter -----------------------------------------------------------------

class ReduceScatterTest : public ::testing::TestWithParam<
                              std::tuple<int, net::ReduceScatterAlgo>> {};

TEST_P(ReduceScatterTest, EachRankGetsItsReducedBlock) {
  const auto [n, algo] = GetParam();
  if (algo == net::ReduceScatterAlgo::kRecursiveHalving &&
      (n & (n - 1)) != 0) {
    GTEST_SKIP() << "recursive halving requires power-of-two";
  }
  mpi::World w(world_cfg(n));
  w.run([&, n = n, algo = algo](Comm& c) {
    // send block b element i = rank + b*10 + i.
    std::vector<std::int64_t> send(static_cast<std::size_t>(n) * 3);
    for (int b = 0; b < n; ++b) {
      for (int i = 0; i < 3; ++i) {
        send[static_cast<std::size_t>(3 * b + i)] = c.rank() + b * 10 + i;
      }
    }
    std::vector<std::int64_t> recv(3, -1);
    mpi::reduce_scatter(c, cv(send), mv(recv), mpi::Datatype::kInt64,
                        mpi::Op::kSum, algo);
    for (int i = 0; i < 3; ++i) {
      // sum over ranks r of (r + rank*10 + i)
      const std::int64_t expect =
          static_cast<std::int64_t>(n) * (c.rank() * 10 + i) +
          static_cast<std::int64_t>(n) * (n - 1) / 2;
      ASSERT_EQ(recv[static_cast<std::size_t>(i)], expect);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    AlgoSweep, ReduceScatterTest,
    ::testing::Combine(
        ::testing::Values(2, 3, 4, 6, 8, 16),
        ::testing::Values(net::ReduceScatterAlgo::kPairwise,
                          net::ReduceScatterAlgo::kRecursiveHalving)));

// ---- Vector variants ------------------------------------------------------------------

TEST(VectorCollectives, GathervWithRaggedCounts) {
  constexpr int kN = 5;
  mpi::World w(world_cfg(kN));
  w.run([](Comm& c) {
    const int n = c.size();
    // Rank r contributes r+1 ints.
    std::vector<std::size_t> counts(static_cast<std::size_t>(n));
    std::vector<std::size_t> displs(static_cast<std::size_t>(n));
    std::size_t off = 0;
    for (int r = 0; r < n; ++r) {
      counts[static_cast<std::size_t>(r)] =
          static_cast<std::size_t>(r + 1) * sizeof(std::int32_t);
      displs[static_cast<std::size_t>(r)] = off;
      off += counts[static_cast<std::size_t>(r)];
    }
    std::vector<std::int32_t> send(static_cast<std::size_t>(c.rank() + 1),
                                   c.rank());
    std::vector<std::int32_t> recv(off / sizeof(std::int32_t), -1);
    mpi::gatherv(c, cv(send), c.rank() == 0 ? mv(recv) : MutView{}, counts,
                 displs, 0);
    if (c.rank() == 0) {
      std::size_t idx = 0;
      for (int r = 0; r < n; ++r) {
        for (int i = 0; i <= r; ++i) {
          ASSERT_EQ(recv[idx++], r);
        }
      }
    }
  });
}

TEST(VectorCollectives, ScattervWithRaggedCounts) {
  constexpr int kN = 5;
  mpi::World w(world_cfg(kN));
  w.run([](Comm& c) {
    const int n = c.size();
    std::vector<std::size_t> counts(static_cast<std::size_t>(n));
    std::vector<std::size_t> displs(static_cast<std::size_t>(n));
    std::size_t off = 0;
    for (int r = 0; r < n; ++r) {
      counts[static_cast<std::size_t>(r)] =
          static_cast<std::size_t>(r + 1) * sizeof(std::int32_t);
      displs[static_cast<std::size_t>(r)] = off;
      off += counts[static_cast<std::size_t>(r)];
    }
    std::vector<std::int32_t> send;
    if (c.rank() == 0) {
      send.resize(off / sizeof(std::int32_t));
      std::size_t idx = 0;
      for (int r = 0; r < n; ++r) {
        for (int i = 0; i <= r; ++i) send[idx++] = r * 7;
      }
    }
    std::vector<std::int32_t> recv(static_cast<std::size_t>(c.rank() + 1),
                                   -1);
    mpi::scatterv(c, c.rank() == 0 ? cv(send) : ConstView{}, counts, displs,
                  mv(recv), 0);
    for (const std::int32_t v : recv) ASSERT_EQ(v, c.rank() * 7);
  });
}

TEST(VectorCollectives, AllgathervMatchesAllgatherOnUniformCounts) {
  constexpr int kN = 6;
  mpi::World w(world_cfg(kN));
  w.run([](Comm& c) {
    const int n = c.size();
    constexpr std::size_t kBytes = 24;
    std::vector<std::size_t> counts(static_cast<std::size_t>(n), kBytes);
    std::vector<std::size_t> displs(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      displs[static_cast<std::size_t>(r)] =
          static_cast<std::size_t>(r) * kBytes;
    }
    std::vector<std::byte> send(kBytes,
                                static_cast<std::byte>(c.rank() + 1));
    std::vector<std::byte> recv_v(kBytes * static_cast<std::size_t>(n));
    std::vector<std::byte> recv_a(kBytes * static_cast<std::size_t>(n));
    mpi::allgatherv(c, cv(send), mv(recv_v), counts, displs);
    mpi::allgather(c, cv(send), mv(recv_a));
    EXPECT_EQ(recv_v, recv_a);
  });
}

TEST(VectorCollectives, AlltoallvTransposesRaggedBlocks) {
  constexpr int kN = 4;
  mpi::World w(world_cfg(kN));
  w.run([](Comm& c) {
    const int n = c.size();
    // Rank r sends (d+1) ints of value r*100+d to destination d, so rank d
    // receives (d+1) ints from each source.
    std::vector<std::size_t> scounts(static_cast<std::size_t>(n));
    std::vector<std::size_t> sdispls(static_cast<std::size_t>(n));
    std::size_t soff = 0;
    for (int d = 0; d < n; ++d) {
      scounts[static_cast<std::size_t>(d)] =
          static_cast<std::size_t>(d + 1) * sizeof(std::int32_t);
      sdispls[static_cast<std::size_t>(d)] = soff;
      soff += scounts[static_cast<std::size_t>(d)];
    }
    std::vector<std::int32_t> send(soff / sizeof(std::int32_t));
    for (int d = 0; d < n; ++d) {
      for (int i = 0; i <= d; ++i) {
        send[sdispls[static_cast<std::size_t>(d)] / sizeof(std::int32_t) +
             static_cast<std::size_t>(i)] = c.rank() * 100 + d;
      }
    }
    const std::size_t mine =
        static_cast<std::size_t>(c.rank() + 1) * sizeof(std::int32_t);
    std::vector<std::size_t> rcounts(static_cast<std::size_t>(n), mine);
    std::vector<std::size_t> rdispls(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      rdispls[static_cast<std::size_t>(s)] =
          static_cast<std::size_t>(s) * mine;
    }
    std::vector<std::int32_t> recv(
        static_cast<std::size_t>(n) * static_cast<std::size_t>(c.rank() + 1),
        -1);
    mpi::alltoallv(c, cv(send), scounts, sdispls, mv(recv), rcounts,
                   rdispls);
    for (int s = 0; s < n; ++s) {
      for (int i = 0; i <= c.rank(); ++i) {
        ASSERT_EQ(recv[static_cast<std::size_t>(s) *
                           static_cast<std::size_t>(c.rank() + 1) +
                       static_cast<std::size_t>(i)],
                  s * 100 + c.rank());
      }
    }
  });
}

// ---- Ops on all datatypes ---------------------------------------------------------

TEST(Ops, ApplyEveryOpOnEveryValidType) {
  using mpi::Datatype;
  using mpi::Op;
  for (const Op op : {Op::kSum, Op::kProd, Op::kMin, Op::kMax, Op::kLand,
                      Op::kLor, Op::kBand, Op::kBor}) {
    for (const Datatype dt :
         {Datatype::kByte, Datatype::kChar, Datatype::kInt32,
          Datatype::kInt64, Datatype::kUint64, Datatype::kFloat,
          Datatype::kDouble}) {
      std::vector<std::byte> a(64, std::byte{3});
      std::vector<std::byte> b(64, std::byte{2});
      if (!mpi::valid_for(op, dt)) {
        EXPECT_THROW(mpi::apply(op, dt, a.data(), b.data(), 1), mpi::Error);
      } else {
        const std::size_t count = 64 / mpi::size_of(dt);
        EXPECT_EQ(mpi::apply(op, dt, a.data(), b.data(), count), count);
      }
    }
  }
}

TEST(Ops, NullBuffersChargeButDoNotTouch) {
  EXPECT_EQ(mpi::apply(mpi::Op::kSum, mpi::Datatype::kDouble, nullptr,
                       nullptr, 1000),
            1000U);
}

// ---- Synthetic timing equivalence ----------------------------------------------------

TEST(SyntheticCollectives, TimingMatchesRealPayloads) {
  auto real_cfg = world_cfg(6);
  auto syn_cfg = world_cfg(6);
  syn_cfg.payload = mpi::PayloadMode::kSynthetic;

  const auto program = [](Comm& c) {
    std::vector<double> send(128, 1.0);
    std::vector<double> recv(128);
    std::vector<double> all(128 * 6UL);
    mpi::allreduce(c, cv(send), mv(recv), mpi::Datatype::kDouble,
                   mpi::Op::kSum);
    mpi::allgather(c, cv(send), mv(all));
    mpi::barrier(c);
  };
  mpi::World wr(real_cfg);
  wr.run(program);
  mpi::World ws(syn_cfg);
  ws.run(program);
  for (int r = 0; r < 6; ++r) {
    EXPECT_DOUBLE_EQ(wr.finish_time(r), ws.finish_time(r)) << "rank " << r;
  }
}
