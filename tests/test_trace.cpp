// Tests for the event tracer, the pickled lowercase collectives, and the
// CSV exports.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "buffers/buffer.hpp"
#include "core/report.hpp"
#include "mpi/collectives.hpp"
#include "mpi/error.hpp"
#include "mpi/world.hpp"
#include "pylayer/pycomm.hpp"

using namespace ombx;

namespace {

mpi::WorldConfig traced_world(int nranks) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = nranks;
  wc.ppn = std::min(nranks, wc.cluster.topo.cores_per_node());
  wc.enable_trace = true;
  return wc;
}

}  // namespace

// ---- Tracer -------------------------------------------------------------------

TEST(Trace, DisabledByDefault) {
  auto wc = traced_world(2);
  wc.enable_trace = false;
  mpi::World w(wc);
  EXPECT_EQ(w.engine().tracer(), nullptr);
}

TEST(Trace, RecordsSendRecvPairs) {
  mpi::World w(traced_world(2));
  w.run([](mpi::Comm& c) {
    std::vector<std::byte> buf(64);
    if (c.rank() == 0) {
      c.send(mpi::ConstView{buf.data(), buf.size()}, 1, 7);
    } else {
      (void)c.recv(mpi::MutView{buf.data(), buf.size()}, 0, 7);
    }
  });
  const mpi::Tracer* t = w.engine().tracer();
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->events_of(0).size(), 1U);
  ASSERT_EQ(t->events_of(1).size(), 1U);
  const mpi::TraceEvent& s = t->events_of(0).front();
  const mpi::TraceEvent& r = t->events_of(1).front();
  EXPECT_EQ(s.kind, mpi::TraceKind::kSend);
  EXPECT_EQ(r.kind, mpi::TraceKind::kRecv);
  EXPECT_EQ(s.peer, 1);
  EXPECT_EQ(r.peer, 0);
  EXPECT_EQ(s.bytes, 64U);
  EXPECT_EQ(s.tag, 7);
  // The receive cannot complete before the send started.
  EXPECT_GE(r.t_end, s.t_start);
}

TEST(Trace, ComputeChargesAppear) {
  mpi::World w(traced_world(2));
  w.run([](mpi::Comm& c) {
    if (c.rank() == 0) c.charge_flops(100000.0);
  });
  const auto& evs = w.engine().tracer()->events_of(0);
  ASSERT_EQ(evs.size(), 1U);
  EXPECT_EQ(evs.front().kind, mpi::TraceKind::kCompute);
  EXPECT_GT(evs.front().t_end, evs.front().t_start);
}

TEST(Trace, MergedIsSortedByStartTime) {
  mpi::World w(traced_world(4));
  w.run([](mpi::Comm& c) {
    std::vector<float> a(64, 1.0F);
    std::vector<float> b(64);
    mpi::allreduce(c,
                   mpi::ConstView{reinterpret_cast<std::byte*>(a.data()),
                                  a.size() * 4},
                   mpi::MutView{reinterpret_cast<std::byte*>(b.data()),
                                b.size() * 4},
                   mpi::Datatype::kFloat, mpi::Op::kSum);
  });
  const auto merged = w.engine().tracer()->merged();
  EXPECT_GT(merged.size(), 8U);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_GE(merged[i].t_start, merged[i - 1].t_start);
  }
}

TEST(Trace, MergedBreaksTimestampTiesByRank) {
  // Hand-record simultaneous events in adverse rank order: merged() must
  // order equal t_start by rank, and keep record order within one rank.
  mpi::Tracer t(3);
  const auto ev = [](int rank, double t0, int tag) {
    mpi::TraceEvent e;
    e.rank = rank;
    e.kind = mpi::TraceKind::kCompute;
    e.t_start = t0;
    e.t_end = t0 + 1.0;
    e.tag = tag;
    return e;
  };
  t.record(ev(2, 5.0, 20));
  t.record(ev(0, 5.0, 10));
  t.record(ev(1, 5.0, 30));
  t.record(ev(1, 5.0, 31));  // same rank, same t_start: stays after 30
  t.record(ev(0, 1.0, 11));
  const auto merged = t.merged();
  ASSERT_EQ(merged.size(), 5U);
  EXPECT_EQ(merged[0].tag, 11);  // earliest start wins outright
  EXPECT_EQ(merged[1].tag, 10);  // then the 5.0 tie resolves rank 0 ...
  EXPECT_EQ(merged[2].tag, 30);  // ... rank 1 (record order preserved) ...
  EXPECT_EQ(merged[3].tag, 31);
  EXPECT_EQ(merged[4].tag, 20);  // ... rank 2
}

TEST(Trace, ClearedBetweenRuns) {
  mpi::World w(traced_world(2));
  w.run([](mpi::Comm& c) {
    std::vector<std::byte> buf(8);
    if (c.rank() == 0) {
      c.send(mpi::ConstView{buf.data(), buf.size()}, 1, 1);
    } else {
      (void)c.recv(mpi::MutView{buf.data(), buf.size()}, 0, 1);
    }
  });
  EXPECT_GT(w.engine().tracer()->total_events(), 0U);
  w.run([](mpi::Comm&) {});
  EXPECT_EQ(w.engine().tracer()->total_events(), 0U);
}

TEST(Trace, CsvHasHeaderAndOneLinePerEvent) {
  mpi::World w(traced_world(2));
  w.run([](mpi::Comm& c) {
    std::vector<std::byte> buf(16);
    if (c.rank() == 0) {
      c.send(mpi::ConstView{buf.data(), buf.size()}, 1, 3);
    } else {
      (void)c.recv(mpi::MutView{buf.data(), buf.size()}, 0, 3);
    }
  });
  std::ostringstream os;
  w.engine().tracer()->write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("rank,kind,t_start_us"), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            1U + w.engine().tracer()->total_events());
}

// ---- Pickled lowercase collectives ----------------------------------------------

TEST(PickledCollectives, BcastDeliversTheObject) {
  mpi::World w(traced_world(3));
  w.run([](mpi::Comm& c) {
    pylayer::PyComm py(c, pylayer::PyCosts::frontera(), true);
    buffers::NumpyBuffer buf(128, false);
    if (c.rank() == 1) buf.fill(0x3C);
    py.bcast_pickled(buf, 128, /*root=*/1);
    EXPECT_TRUE(buf.verify(0x3C, 128)) << "rank " << c.rank();
  });
}

TEST(PickledCollectives, BcastCostsMoreThanDirect) {
  const auto run_mode = [](bool pickled) {
    mpi::World w(traced_world(4));
    double t = 0.0;
    w.run([&](mpi::Comm& c) {
      pylayer::PyComm py(c, pylayer::PyCosts::frontera(), true);
      buffers::NumpyBuffer buf(1 << 16, false);
      if (pickled) {
        py.bcast_pickled(buf, 1 << 16, 0);
      } else {
        py.Bcast(buf, 1 << 16, 0);
      }
      mpi::barrier(c);
      if (c.rank() == 0) t = c.now();
    });
    return t;
  };
  EXPECT_GT(run_mode(true), run_mode(false));
}

TEST(PickledCollectives, GatherReturnsEveryContribution) {
  constexpr int kN = 4;
  mpi::World w(traced_world(kN));
  w.run([](mpi::Comm& c) {
    pylayer::PyComm py(c, pylayer::PyCosts::frontera(), true);
    buffers::NumpyBuffer buf(32, false);
    buf.fill(static_cast<std::uint8_t>(10 + c.rank()));
    const auto gathered = py.gather_pickled(buf, 32, /*root=*/0);
    if (c.rank() == 0) {
      ASSERT_EQ(gathered.size(), static_cast<std::size_t>(kN));
      for (int r = 0; r < kN; ++r) {
        const auto& payload = gathered[static_cast<std::size_t>(r)];
        ASSERT_EQ(payload.size(), 32U);
        EXPECT_EQ(payload[0],
                  static_cast<std::byte>((10 + r) & 0xff));
      }
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
}

TEST(PickledCollectives, AllreduceMatchesBufferAllreduce) {
  constexpr int kN = 5;
  mpi::World w(traced_world(kN));
  w.run([](mpi::Comm& c) {
    pylayer::PyComm py(c, pylayer::PyCosts::frontera(), true);
    buffers::NumpyBuffer send(64, false, mpi::Datatype::kInt32);
    buffers::NumpyBuffer out_obj(64, false, mpi::Datatype::kInt32);
    buffers::NumpyBuffer out_buf(64, false, mpi::Datatype::kInt32);
    auto* vals = reinterpret_cast<std::int32_t*>(send.data());
    for (int i = 0; i < 16; ++i) vals[i] = c.rank() * 100 + i;

    py.allreduce_pickled(send, out_obj, 64, mpi::Datatype::kInt32,
                         mpi::Op::kSum);
    py.Allreduce(send, out_buf, 64, mpi::Datatype::kInt32, mpi::Op::kSum);

    const auto* a = reinterpret_cast<const std::int32_t*>(out_obj.data());
    const auto* b = reinterpret_cast<const std::int32_t*>(out_buf.data());
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(a[i], b[i]) << "element " << i;
    }
  });
}

TEST(PickledCollectives, RejectSyntheticPayloads) {
  auto wc = traced_world(2);
  wc.payload = mpi::PayloadMode::kSynthetic;
  mpi::World w(wc);
  EXPECT_THROW(w.run([](mpi::Comm& c) {
                 pylayer::PyComm py(c, pylayer::PyCosts::frontera(), true);
                 buffers::NumpyBuffer buf(8, true);
                 py.bcast_pickled(buf, 8, 0);
               }),
               mpi::Error);
}

// ---- Table CSV --------------------------------------------------------------------

TEST(ReportCsv, RoundTripsHeaderAndRows) {
  core::Table t("x", {"Size", "Latency (us)"});
  t.add_row(16, {1.25});
  t.add_row(32, {2.5});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "Size,Latency (us)\n16,1.25\n32,2.50\n");
}

TEST(ReportCsv, QuotesFieldsWithCommas) {
  core::Table t("x", {"a,b", "c"});
  t.add_row({"v,1", "plain"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "\"a,b\",c\n\"v,1\",plain\n");
}

TEST(ReportCsv, QuotesAndDoublesEmbeddedQuotes) {
  // RFC 4180: a field containing a double quote is quoted and the
  // embedded quote doubled.
  core::Table t("x", {"name", "v"});
  t.add_row({"say \"hi\"", "1"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "name,v\n\"say \"\"hi\"\"\",1\n");
}

TEST(ReportCsv, QuotesFieldsWithNewlines) {
  // RFC 4180: embedded CR or LF forces quoting too (previously only
  // commas and quotes triggered it, producing unparseable rows).
  core::Table t("x", {"name", "v"});
  t.add_row({"two\nlines", "cr\rhere"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "name,v\n\"two\nlines\",\"cr\rhere\"\n");
}

TEST(TraceCsv, QuotesAttrPerRfc4180) {
  // Tracer CSV shares the same quoting rules for the attr column.
  mpi::Tracer t(1);
  mpi::TraceEvent e;
  e.rank = 0;
  e.kind = mpi::TraceKind::kSpan;
  e.t_start = 0.0;
  e.t_end = 1.0;
  e.attr = "odd,\"attr\"";
  t.record(e);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"odd,\"\"attr\"\"\""), std::string::npos)
      << os.str();
}
