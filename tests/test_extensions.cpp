// Tests for the OMB-X extensions beyond the paper's v1 scope:
// non-blocking collectives, hierarchical (two-level) collectives, and the
// distributed synchronous-SGD workload.
#include <gtest/gtest.h>

#include <numeric>

#include "bench_suite/suite.hpp"
#include "mpi/error.hpp"
#include "mpi/hierarchical.hpp"
#include "mpi/nbc.hpp"
#include "mpi/world.hpp"
#include "ml/logreg.hpp"

using namespace ombx;
using mpi::Comm;
using mpi::ConstView;
using mpi::MutView;

namespace {

mpi::WorldConfig world_cfg(int nranks, int ppn) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = nranks;
  wc.ppn = ppn;
  return wc;
}

template <typename T>
ConstView cv(const std::vector<T>& v) {
  return ConstView{reinterpret_cast<const std::byte*>(v.data()),
                   v.size() * sizeof(T)};
}
template <typename T>
MutView mv(std::vector<T>& v) {
  return MutView{reinterpret_cast<std::byte*>(v.data()),
                 v.size() * sizeof(T)};
}

}  // namespace

// ---- Non-blocking collectives ---------------------------------------------------

TEST(Nbc, IallreduceProducesTheSameResultAsBlocking) {
  mpi::World w(world_cfg(4, 4));
  w.run([](Comm& c) {
    std::vector<std::int64_t> send(16);
    std::iota(send.begin(), send.end(), c.rank());
    std::vector<std::int64_t> nb(16, 0);
    std::vector<std::int64_t> bl(16, 0);
    mpi::CollRequest req = mpi::iallreduce(c, cv(send), mv(nb),
                                           mpi::Datatype::kInt64,
                                           mpi::Op::kSum);
    EXPECT_FALSE(req.done());
    req.wait();
    EXPECT_TRUE(req.done());
    req.wait();  // idempotent
    mpi::allreduce(c, cv(send), mv(bl), mpi::Datatype::kInt64,
                   mpi::Op::kSum);
    EXPECT_EQ(nb, bl);
  });
}

TEST(Nbc, ComputeBetweenPostAndWaitDoesNotOverlap) {
  // Without async progress, t_total ~= t_compute + t_pure.
  mpi::World w(world_cfg(4, 1));
  w.run([](Comm& c) {
    std::vector<float> a(256, 1.0F);
    std::vector<float> b(256, 0.0F);

    mpi::barrier(c);
    double t0 = c.now();
    mpi::iallreduce(c, cv(a), mv(b), mpi::Datatype::kFloat, mpi::Op::kSum)
        .wait();
    const double t_pure = c.now() - t0;

    mpi::barrier(c);
    t0 = c.now();
    mpi::CollRequest req =
        mpi::iallreduce(c, cv(a), mv(b), mpi::Datatype::kFloat,
                        mpi::Op::kSum);
    const double flops = 100000.0;
    c.charge_flops(flops);
    req.wait();
    const double t_total = c.now() - t0;
    const double t_cpu =
        flops / c.net().cluster().compute.flops_per_us;
    EXPECT_GE(t_total, 0.95 * (t_pure + t_cpu));
  });
}

TEST(Nbc, EveryOperationRoundTrips) {
  mpi::World w(world_cfg(4, 4));
  w.run([](Comm& c) {
    const auto n = static_cast<std::size_t>(c.size());
    std::vector<std::int32_t> one(8, c.rank());
    std::vector<std::int32_t> red(8, 0);
    std::vector<std::int32_t> all(8 * n, 0);
    std::vector<std::int32_t> a2a(8 * n, 0);
    std::vector<std::int32_t> a2a_out(8 * n, 0);

    mpi::ibarrier(c).wait();
    mpi::ibcast(c, mv(one), 0).wait();
    mpi::ireduce(c, cv(one), mv(red), mpi::Datatype::kInt32, mpi::Op::kMax,
                 0)
        .wait();
    mpi::igather(c, cv(one), c.rank() == 0 ? mv(all) : MutView{}, 0).wait();
    mpi::iscatter(c, c.rank() == 0 ? cv(all) : ConstView{}, mv(red), 0)
        .wait();
    mpi::iallgather(c, cv(one), mv(all)).wait();
    mpi::ialltoall(c, cv(a2a), mv(a2a_out)).wait();
    mpi::ireduce_scatter(c, cv(a2a), mv(red), mpi::Datatype::kInt32,
                         mpi::Op::kSum)
        .wait();
  });
}

TEST(NbcBench, OverlapIsNearZero) {
  core::SuiteConfig cfg;
  cfg.nranks = 4;
  cfg.ppn = 1;
  cfg.mode = core::Mode::kNativeC;
  cfg.opts.min_size = 1024;
  cfg.opts.max_size = 1024;
  cfg.opts.iterations = 3;
  cfg.opts.warmup = 1;
  const auto rows =
      bench_suite::run_nbc(cfg, bench_suite::NbcBench::kIallreduce);
  ASSERT_EQ(rows.size(), 1U);
  EXPECT_GT(rows[0].t_pure_us, 0.0);
  EXPECT_GE(rows[0].t_total_us, rows[0].t_pure_us);
  EXPECT_LT(rows[0].overlap_pct, 15.0);
}

// ---- Hierarchical collectives ------------------------------------------------------

TEST(Hierarchical, SplitsByNode) {
  mpi::World w(world_cfg(8, 2));  // 4 nodes x 2 ranks
  w.run([](Comm& c) {
    mpi::HierarchicalComm hier(c);
    EXPECT_EQ(hier.node().size(), 2);
    EXPECT_EQ(hier.nodes(), 4);
    EXPECT_EQ(hier.is_leader(), hier.node().rank() == 0);
  });
}

TEST(Hierarchical, AllreduceMatchesFlat) {
  mpi::World w(world_cfg(12, 4));  // 3 nodes x 4 ranks
  w.run([](Comm& c) {
    mpi::HierarchicalComm hier(c);
    std::vector<std::int64_t> send(10);
    std::iota(send.begin(), send.end(), 7 * c.rank());
    std::vector<std::int64_t> flat(10, 0);
    std::vector<std::int64_t> two(10, 0);
    mpi::allreduce(c, cv(send), mv(flat), mpi::Datatype::kInt64,
                   mpi::Op::kSum);
    hier.allreduce(cv(send), mv(two), mpi::Datatype::kInt64, mpi::Op::kSum);
    EXPECT_EQ(two, flat);
  });
}

TEST(Hierarchical, BcastDeliversFromWorldRoot) {
  mpi::World w(world_cfg(8, 2));
  w.run([](Comm& c) {
    mpi::HierarchicalComm hier(c);
    std::vector<std::int32_t> buf(6, c.rank() == 0 ? 99 : 0);
    hier.bcast(mv(buf));
    for (const auto v : buf) EXPECT_EQ(v, 99);
  });
}

TEST(Hierarchical, BarrierSynchronizes) {
  mpi::World w(world_cfg(8, 2));
  w.run([](Comm& c) {
    mpi::HierarchicalComm hier(c);
    c.clock().advance(3.0 * c.rank());
    hier.barrier();
    EXPECT_GE(c.now(), 21.0);
  });
}

TEST(Hierarchical, WinsAtFullSubscription) {
  // The ablation claim: at high ppn the two-level allreduce beats flat.
  mpi::WorldConfig wc = world_cfg(112, 56);  // 2 nodes, full
  wc.payload = mpi::PayloadMode::kSynthetic;
  mpi::World w(wc);
  std::vector<double> flat(1), two(1);
  w.run([&](Comm& c) {
    mpi::HierarchicalComm hier(c);
    const ConstView s{nullptr, 262144};
    const MutView r{nullptr, 262144};
    mpi::barrier(c);
    double t0 = c.now();
    mpi::allreduce(c, s, r, mpi::Datatype::kFloat, mpi::Op::kSum);
    if (c.rank() == 0) flat[0] = c.now() - t0;
    mpi::barrier(c);
    t0 = c.now();
    hier.allreduce(s, r, mpi::Datatype::kFloat, mpi::Op::kSum);
    if (c.rank() == 0) two[0] = c.now() - t0;
  });
  EXPECT_LT(two[0], flat[0]);
}

// ---- Distributed SGD -----------------------------------------------------------------

TEST(LogReg, LearnsAPlantedHyperplane) {
  const ml::Dataset ds = ml::make_dota2_like(1500, 16, 77);
  ml::LogisticRegression model(ds.d);
  const double loss0 = model.loss(ds);
  for (int e = 0; e < 40; ++e) {
    const auto g = model.gradient_sum(ds, 0, ds.n);
    model.apply(g, ds.n, 0.8);
  }
  EXPECT_LT(model.loss(ds), loss0);
  EXPECT_GT(model.accuracy(ds), 0.75);
}

TEST(LogReg, RejectsMisuse) {
  EXPECT_THROW(ml::LogisticRegression(0), std::invalid_argument);
  ml::LogisticRegression model(4);
  const ml::Dataset ds = ml::make_dota2_like(10, 8, 1);
  EXPECT_THROW((void)model.gradient_sum(ds, 0, 10), std::invalid_argument);
  const ml::Dataset ok = ml::make_dota2_like(10, 4, 1);
  EXPECT_THROW((void)model.gradient_sum(ok, 5, 2), std::invalid_argument);
  EXPECT_THROW(model.apply(std::vector<double>(3), 10, 0.1),
               std::invalid_argument);
}

TEST(Sgd, ShardedGradientsEqualFullBatch) {
  const ml::Dataset ds = ml::make_dota2_like(200, 8, 5);
  ml::LogisticRegression model(ds.d);
  const auto full = model.gradient_sum(ds, 0, ds.n);
  auto a = model.gradient_sum(ds, 0, 120);
  const auto b = model.gradient_sum(ds, 120, ds.n);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], full[i], 1e-9 * std::max(1.0, std::abs(full[i])));
  }
}

TEST(Sgd, ScalingCurveIsSaneAndDeterministic) {
  const std::vector<int> procs{1, 8, 28};
  const auto a =
      ml::sgd_scaling(net::ClusterSpec::ri2(), net::MpiTuning::mvapich2(),
                      ml::SgdBenchConfig{}, procs);
  EXPECT_GT(a.points[1].speedup, a.points[0].speedup);
  EXPECT_GT(a.points[2].speedup, a.points[1].speedup);
  EXPECT_LE(a.points[2].speedup, 28.5);
  const auto b =
      ml::sgd_scaling(net::ClusterSpec::ri2(), net::MpiTuning::mvapich2(),
                      ml::SgdBenchConfig{}, procs);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points[i].time_s, b.points[i].time_s);
  }
}
