// Rank-scheduler tests (ombx::sched): mode parsing/resolution, the fiber
// pool's basic run contract, fibers-vs-threads byte-identity of benchmark
// rows (the determinism contract's regression gate at np = 2/8/16), a
// np=512 smoke world proving paper-scale worlds no longer need 512 host
// threads, fiber-mode ULFM kill/shrink recovery, and explore record/
// replay identity on the fiber backend.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bench_suite/suite.hpp"
#include "explore/explore.hpp"
#include "explore/explorer.hpp"
#include "ft/ft.hpp"
#include "mpi/collectives.hpp"
#include "mpi/error.hpp"
#include "mpi/world.hpp"
#include "sched/sched.hpp"

using namespace ombx;
using mpi::Comm;

namespace {

mpi::ConstView cv(const std::vector<std::byte>& v) {
  return mpi::ConstView{v.data(), v.size(), net::MemSpace::kHost};
}
mpi::MutView mv(std::vector<std::byte>& v) {
  return mpi::MutView{v.data(), v.size(), net::MemSpace::kHost};
}

mpi::WorldConfig world_with(int nranks, sched::Mode mode, int ppn = 4) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = nranks;
  wc.ppn = ppn;
  wc.sched = mode;
  return wc;
}

}  // namespace

// ---- Mode selection ---------------------------------------------------------

TEST(SchedMode, NamesRoundTrip) {
  EXPECT_EQ(sched::mode_by_name("auto"), sched::Mode::kAuto);
  EXPECT_EQ(sched::mode_by_name("threads"), sched::Mode::kThreads);
  EXPECT_EQ(sched::mode_by_name("fibers"), sched::Mode::kFibers);
  EXPECT_STREQ(sched::to_string(sched::Mode::kAuto), "auto");
  EXPECT_STREQ(sched::to_string(sched::Mode::kThreads), "threads");
  EXPECT_STREQ(sched::to_string(sched::Mode::kFibers), "fibers");
  EXPECT_THROW((void)sched::mode_by_name("green-threads"),
               std::invalid_argument);
}

TEST(SchedMode, ResolveHonorsSanitizerDegradation) {
  EXPECT_EQ(sched::resolve(sched::Mode::kThreads), sched::Mode::kThreads);
  // Explicit fibers pass through, except on sanitized builds where every
  // request degrades to threads (swapcontext is opaque to TSan/ASan).
  EXPECT_EQ(sched::resolve(sched::Mode::kFibers),
            sched::sanitizers_active() ? sched::Mode::kThreads
                                       : sched::Mode::kFibers);
  // kAuto resolves to one of the two concrete backends (which one depends
  // on sanitizer instrumentation and OMBX_SCHED, both host properties).
  const sched::Mode r = sched::resolve(sched::Mode::kAuto);
  EXPECT_TRUE(r == sched::Mode::kThreads || r == sched::Mode::kFibers);
  if (sched::sanitizers_active()) EXPECT_EQ(r, sched::Mode::kThreads);
}

// ---- FiberPool basics -------------------------------------------------------

// Direct FiberPool tests bypass resolve()'s sanitizer degradation, so
// they must skip themselves on instrumented builds.
#define OMBX_SKIP_IF_SANITIZED()                                        \
  if (sched::sanitizers_active())                                       \
  GTEST_SKIP() << "fibers degrade to threads on sanitized builds"

TEST(FiberPool, RunsEveryRankExactlyOnce) {
  OMBX_SKIP_IF_SANITIZED();
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  sched::FiberPool::instance().run_world(
      257, [&](int r) { hits[static_cast<std::size_t>(r)].fetch_add(1); },
      [](int) { return 0.0; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(FiberPool, RankExceptionPropagatesToCaller) {
  OMBX_SKIP_IF_SANITIZED();
  EXPECT_THROW(sched::FiberPool::instance().run_world(
                   4,
                   [](int r) {
                     if (r == 2) throw std::runtime_error("boom");
                   },
                   [](int) { return 0.0; }),
               std::runtime_error);
}

TEST(FiberPool, ExecIdDistinguishesFibersOnOneWorker) {
  // All fibers may share a single worker thread (the pool is sized by the
  // host), yet each must see a distinct exec_id — the mailbox's self-send
  // Dekker skip is keyed on it.
  OMBX_SKIP_IF_SANITIZED();
  std::vector<std::uintptr_t> ids(16, 0);
  sched::FiberPool::instance().run_world(
      16,
      [&](int r) {
        ids[static_cast<std::size_t>(r)] = sched::exec_id();
        EXPECT_NE(sched::current_fiber(), nullptr);
      },
      [](int) { return 0.0; });
  std::vector<std::uintptr_t> uniq = ids;
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  EXPECT_EQ(uniq.size(), ids.size());
  // Off-fiber, exec_id still returns a stable non-fiber identity.
  EXPECT_EQ(sched::current_fiber(), nullptr);
  EXPECT_EQ(sched::exec_id(), sched::exec_id());
}

// ---- Fibers-vs-threads byte-identity ---------------------------------------

namespace {

/// Exact (bitwise) row comparison: the determinism contract promises the
/// two backends agree to the last bit, not merely within tolerance.
void expect_rows_identical(const std::vector<core::Row>& a,
                           const std::vector<core::Row>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].size, b[i].size);
    EXPECT_EQ(a[i].stats.avg, b[i].stats.avg) << "size=" << a[i].size;
    EXPECT_EQ(a[i].stats.min, b[i].stats.min) << "size=" << a[i].size;
    EXPECT_EQ(a[i].stats.max, b[i].stats.max) << "size=" << a[i].size;
  }
}

core::SuiteConfig suite_cfg(int nranks, sched::Mode mode) {
  core::SuiteConfig cfg;
  cfg.nranks = nranks;
  cfg.ppn = 1;
  cfg.opts.min_size = 1;
  cfg.opts.max_size = 16 * 1024;
  cfg.opts.iterations = 4;
  cfg.opts.warmup = 1;
  cfg.sched = mode;
  return cfg;
}

}  // namespace

TEST(SchedParity, LatencyRowsIdenticalAtNp2) {
  const auto threads =
      bench_suite::run_latency(suite_cfg(2, sched::Mode::kThreads));
  const auto fibers =
      bench_suite::run_latency(suite_cfg(2, sched::Mode::kFibers));
  expect_rows_identical(threads, fibers);
}

TEST(SchedParity, AllreduceRowsIdenticalAtNp8) {
  const auto threads = bench_suite::run_collective(
      suite_cfg(8, sched::Mode::kThreads), bench_suite::CollBench::kAllreduce);
  const auto fibers = bench_suite::run_collective(
      suite_cfg(8, sched::Mode::kFibers), bench_suite::CollBench::kAllreduce);
  expect_rows_identical(threads, fibers);
}

TEST(SchedParity, BcastRowsIdenticalAtNp16) {
  const auto threads = bench_suite::run_collective(
      suite_cfg(16, sched::Mode::kThreads), bench_suite::CollBench::kBcast);
  const auto fibers = bench_suite::run_collective(
      suite_cfg(16, sched::Mode::kFibers), bench_suite::CollBench::kBcast);
  expect_rows_identical(threads, fibers);
}

// ---- Paper-scale smoke ------------------------------------------------------

TEST(SchedScale, Np512RingAndAllreduceComplete) {
  // 512 ranks on the fiber pool: host threads stay bounded by the worker
  // count, not np — the property that makes np=224 ML figures and np=1024
  // campaign sweeps tractable.  Payloads stay real (they are tiny) so the
  // allreduce result is data-bearing and checkable.
  mpi::WorldConfig wc = world_with(512, sched::Mode::kFibers, /*ppn=*/56);
  mpi::World w(wc);
  std::atomic<int> done{0};

  w.run([&](Comm& c) {
    const int n = c.size();
    const int next = (c.rank() + 1) % n;
    const int prev = (c.rank() + n - 1) % n;
    std::vector<std::byte> buf(8);
    std::vector<std::byte> got(8);
    // Ring: every rank both sends and receives (eager, so no deadlock).
    c.send(cv(buf), next, 7);
    (void)c.recv(mv(got), prev, 7);
    std::vector<double> one(1, 1.0);
    std::vector<double> sum(1, 0.0);
    mpi::allreduce(c,
                   mpi::ConstView{reinterpret_cast<const std::byte*>(
                                      one.data()),
                                  sizeof(double)},
                   mpi::MutView{reinterpret_cast<std::byte*>(sum.data()),
                                sizeof(double)},
                   mpi::Datatype::kDouble, mpi::Op::kSum);
    EXPECT_DOUBLE_EQ(sum[0], 512.0);
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 512);
}

// ---- Concurrent worlds sharing the pool ------------------------------------

TEST(SchedConcurrency, ConcurrentWorldsDoNotFalsePositiveTheWatchdog) {
  // Campaign cells run several worlds on the shared pool at once.  A rank
  // whose wakeup is queued behind another world's fibers still *looks*
  // blocked in its WaitRegistry, so the deadlock watchdog must not fire on
  // "all blocked + no progress" alone — it additionally requires an idle
  // pool.  The 1 ms poll makes the pre-fix false positive near-certain.
  OMBX_SKIP_IF_SANITIZED();
  constexpr int kWorlds = 4;
  std::atomic<int> done{0};
  std::vector<std::thread> drivers;
  drivers.reserve(kWorlds);
  for (int wi = 0; wi < kWorlds; ++wi) {
    drivers.emplace_back([&] {
      mpi::WorldConfig wc = world_with(64, sched::Mode::kFibers, /*ppn=*/8);
      wc.watchdog_poll_ms = 1.0;
      mpi::World w(wc);
      w.run([&](Comm& c) {
        std::vector<double> one(512, 1.0);
        std::vector<double> sum(512, 0.0);
        const mpi::ConstView sv{
            reinterpret_cast<const std::byte*>(one.data()),
            one.size() * sizeof(double)};
        const mpi::MutView rv{reinterpret_cast<std::byte*>(sum.data()),
                              sum.size() * sizeof(double)};
        for (int i = 0; i < 20; ++i) {
          mpi::allreduce(c, sv, rv, mpi::Datatype::kDouble, mpi::Op::kSum);
        }
        EXPECT_DOUBLE_EQ(sum[0], 64.0);
        done.fetch_add(1);
      });
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(done.load(), kWorlds * 64);
}

// ---- FT recovery on fibers --------------------------------------------------

TEST(SchedFt, KillShrinkRecoversOnFiberBackend) {
  // The FT recovery barriers (shrink/agree) park fibers instead of
  // blocking threads; the recovery outcome must be unchanged.
  mpi::WorldConfig wc = world_with(8, sched::Mode::kFibers);
  wc.ft.enabled = true;
  wc.fault.kills.push_back({5, 300.0});
  mpi::World w(wc);
  std::atomic<int> done{0};

  w.run([&](Comm& comm) {
    std::vector<double> val(64, 1.0);
    std::vector<double> sum(64, 0.0);
    const mpi::ConstView sv{
        reinterpret_cast<const std::byte*>(val.data()),
        val.size() * sizeof(double)};
    const mpi::MutView rv{reinterpret_cast<std::byte*>(sum.data()),
                          sum.size() * sizeof(double)};
    try {
      for (int i = 0; i < 1 << 20; ++i) {
        mpi::allreduce(comm, sv, rv, mpi::Datatype::kDouble, mpi::Op::kSum);
      }
      ADD_FAILURE() << "kill never surfaced";
    } catch (const ft::ProcFailedError&) {
    } catch (const ft::RevokedError&) {
    }
    comm.revoke();
    (void)comm.agree(1u);
    comm.failure_ack();
    EXPECT_EQ(comm.get_failed(), std::vector<int>{5});

    Comm alive = comm.shrink();
    ASSERT_EQ(alive.size(), 7);
    const std::array<int, 7> expect_world{0, 1, 2, 3, 4, 6, 7};
    EXPECT_EQ(alive.world_rank(alive.rank()),
              expect_world[static_cast<std::size_t>(alive.rank())]);
    mpi::allreduce(alive, sv, rv, mpi::Datatype::kDouble, mpi::Op::kSum);
    EXPECT_DOUBLE_EQ(sum[0], 7.0);
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 7);
}

// ---- Explore record/replay on fibers ---------------------------------------

namespace {

constexpr int kData = 5;
constexpr int kToken = 6;
constexpr int kGo = 7;

/// Same wildcard-race shape as test_explore's fixture: both candidate
/// messages are guaranteed queued before either receiver decides, so the
/// oracle records two binary decisions per receiver.
struct TwoReceiverRace {
  std::atomic<int> first1{-1};
  std::atomic<int> first2{-1};

  void operator()(Comm& c) {
    std::vector<std::byte> buf(8);
    std::vector<std::byte> tmp(8);
    if (c.rank() == 0) {
      c.send(cv(buf), 1, kData);
      c.send(cv(buf), 2, kData);
      c.send(cv(buf), 3, kToken);
    } else if (c.rank() == 3) {
      (void)c.recv(mv(tmp), 0, kToken);
      c.send(cv(buf), 1, kData);
      c.send(cv(buf), 2, kData);
      c.send(cv(buf), 1, kGo);
      c.send(cv(buf), 2, kGo);
    } else {
      (void)c.recv(mv(tmp), 3, kGo);
      const mpi::Status first = c.recv(mv(tmp), mpi::kAnySource, kData);
      (void)c.recv(mv(tmp), mpi::kAnySource, kData);
      (c.rank() == 1 ? first1 : first2)
          .store(first.source, std::memory_order_relaxed);
    }
  }
};

}  // namespace

TEST(SchedExplore, RecordReplayIdentityOnFiberBackend) {
  // Replay pins force match choices by *waiting* for the pinned bin, not
  // by relying on host timing — so record/replay must hold on fibers too.
  auto race = std::make_shared<TwoReceiverRace>();
  const explore::RunFn run = explore::make_world_runner(
      world_with(4, sched::Mode::kFibers, /*ppn=*/1),
      [race](Comm& c) { (*race)(c); });

  const explore::RunResult rec = run(explore::Schedule{});
  ASSERT_FALSE(rec.failed) << rec.what;
  const int rec_first1 = race->first1.load();
  const int rec_first2 = race->first2.load();

  const explore::Schedule pins = explore::pin_everything(rec.log);
  EXPECT_EQ(pins.pins.size(), 4u);

  const explore::RunResult rep = run(pins);
  ASSERT_FALSE(rep.failed) << rep.what;
  EXPECT_FALSE(rep.diverged);
  EXPECT_EQ(race->first1.load(), rec_first1);
  EXPECT_EQ(race->first2.load(), rec_first2);
  ASSERT_EQ(rep.log.size(), rec.log.size());
  for (std::size_t i = 0; i < rec.log.size(); ++i) {
    EXPECT_EQ(rep.log[i].src, rec.log[i].src);
    EXPECT_EQ(rep.log[i].tag, rec.log[i].tag);
    EXPECT_TRUE(rep.log[i].forced);
  }
}
