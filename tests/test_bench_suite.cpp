// Behavioural tests for the benchmark suite: every benchmark runs, the
// numbers satisfy the physical invariants the paper leans on (Python
// overhead positive, visible at small sizes, relatively negligible at
// large; pickle worse than direct; Numba worse than CuPy/PyCUDA).
#include <gtest/gtest.h>

#include "bench_suite/suite.hpp"
#include "core/runner.hpp"
#include "mpi/error.hpp"

using namespace ombx;
using bench_suite::CollBench;
using bench_suite::VecBench;
using core::Mode;
using core::SuiteConfig;

namespace {

SuiteConfig quick_cfg() {
  SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::frontera();
  cfg.nranks = 2;
  cfg.ppn = 2;
  cfg.opts.max_size = 4096;
  cfg.opts.iterations = 3;
  cfg.opts.warmup = 1;
  cfg.opts.window_size = 8;
  return cfg;
}

double mean_metric(const std::vector<core::Row>& rows) {
  double s = 0.0;
  for (const auto& r : rows) s += r.stats.avg;
  return s / static_cast<double>(rows.size());
}

}  // namespace

TEST(Latency, ProducesOneRowPerSize) {
  SuiteConfig cfg = quick_cfg();
  const auto rows = bench_suite::run_latency(cfg);
  EXPECT_EQ(rows.size(), cfg.opts.sizes().size());
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].stats.avg, rows[i - 1].stats.avg * 0.99)
        << "latency should be (weakly) monotone in size";
  }
}

TEST(Latency, PythonOverheadPositiveAndSmallAtLargeSizes) {
  SuiteConfig cfg = quick_cfg();
  cfg.opts.max_size = 1 << 20;
  cfg.mode = Mode::kNativeC;
  const auto c_rows = bench_suite::run_latency(cfg);
  cfg.mode = Mode::kPythonDirect;
  const auto py_rows = bench_suite::run_latency(cfg);
  ASSERT_EQ(c_rows.size(), py_rows.size());

  for (std::size_t i = 0; i < c_rows.size(); ++i) {
    EXPECT_GT(py_rows[i].stats.avg, c_rows[i].stats.avg)
        << "size " << c_rows[i].size;
  }
  // Relative overhead shrinks with message size (paper insight #1).
  const double rel_small =
      py_rows.front().stats.avg / c_rows.front().stats.avg;
  const double rel_large =
      py_rows.back().stats.avg / c_rows.back().stats.avg;
  EXPECT_GT(rel_small, rel_large);
  EXPECT_LT(rel_large, 1.10);  // "relatively negligible" at 1 MB
}

TEST(Latency, ValidatePayloads) {
  SuiteConfig cfg = quick_cfg();
  cfg.opts.validate = true;
  EXPECT_NO_THROW((void)bench_suite::run_latency(cfg));
}

TEST(Latency, PickleSlowerThanDirect) {
  SuiteConfig cfg = quick_cfg();
  cfg.opts.max_size = 1 << 18;
  cfg.mode = Mode::kPythonDirect;
  const auto direct = bench_suite::run_latency(cfg);
  cfg.mode = Mode::kPythonPickle;
  const auto pickle = bench_suite::run_latency(cfg);
  ASSERT_EQ(direct.size(), pickle.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_GT(pickle[i].stats.avg, direct[i].stats.avg);
  }
  // Divergence grows with size (paper Fig. 33).
  EXPECT_GT(pickle.back().stats.avg - direct.back().stats.avg,
            pickle.front().stats.avg - direct.front().stats.avg);
}

TEST(Latency, RequiresTwoRanks) {
  SuiteConfig cfg = quick_cfg();
  cfg.nranks = 4;
  cfg.ppn = 4;
  EXPECT_THROW((void)bench_suite::run_latency(cfg), mpi::Error);
}

TEST(Bandwidth, IncreasesWithMessageSize) {
  SuiteConfig cfg = quick_cfg();
  cfg.ppn = 1;  // inter-node
  cfg.opts.max_size = 1 << 18;
  const auto rows = bench_suite::run_bandwidth(cfg);
  EXPECT_GT(rows.back().stats.avg, rows.front().stats.avg * 10);
}

TEST(Bandwidth, ApproachesLinkRateAtLargeSizes) {
  SuiteConfig cfg = quick_cfg();
  cfg.ppn = 1;
  cfg.mode = Mode::kNativeC;
  cfg.opts.max_size = 1 << 20;
  const auto rows = bench_suite::run_bandwidth(cfg);
  // Frontera HDR-100 model peaks at 12.2 GB/s == 12200 MB/s.
  EXPECT_GT(rows.back().stats.avg, 0.8 * 12200.0);
  EXPECT_LT(rows.back().stats.avg, 1.02 * 12200.0);
}

TEST(Bandwidth, PythonOverheadIsSmall) {
  SuiteConfig cfg = quick_cfg();
  cfg.ppn = 1;
  cfg.opts.max_size = 1 << 20;
  cfg.mode = Mode::kNativeC;
  const double c_bw = mean_metric(bench_suite::run_bandwidth(cfg));
  cfg.mode = Mode::kPythonDirect;
  const double py_bw = mean_metric(bench_suite::run_bandwidth(cfg));
  EXPECT_LT(py_bw, c_bw);
  EXPECT_GT(py_bw, 0.80 * c_bw);  // paper: ~6% average bandwidth overhead
}

TEST(BiBandwidth, RoughlyDoublesUniBandwidth) {
  SuiteConfig cfg = quick_cfg();
  cfg.ppn = 1;
  cfg.mode = Mode::kNativeC;
  cfg.opts.max_size = 1 << 20;
  cfg.opts.min_size = 1 << 20;
  const double uni = bench_suite::run_bandwidth(cfg).back().stats.avg;
  const double bi = bench_suite::run_bibw(cfg).back().stats.avg;
  EXPECT_GT(bi, 1.4 * uni);
  EXPECT_LT(bi, 2.2 * uni);
}

TEST(MultiLat, ReportsCrossPairStats) {
  SuiteConfig cfg = quick_cfg();
  cfg.nranks = 4;
  cfg.ppn = 4;
  const auto rows = bench_suite::run_multi_lat(cfg);
  for (const auto& r : rows) {
    EXPECT_GT(r.stats.avg, 0.0);
    EXPECT_LE(r.stats.min, r.stats.avg);
    EXPECT_GE(r.stats.max, r.stats.avg);
  }
}

class CollectiveBenchTest : public ::testing::TestWithParam<CollBench> {};

TEST_P(CollectiveBenchTest, RunsAndReportsPositiveLatency) {
  SuiteConfig cfg = quick_cfg();
  cfg.nranks = 4;
  cfg.ppn = 4;
  cfg.opts.max_size = 1024;
  const auto rows = bench_suite::run_collective(cfg, GetParam());
  ASSERT_FALSE(rows.empty());
  for (const auto& r : rows) {
    EXPECT_GT(r.stats.avg, 0.0);
    EXPECT_LE(r.stats.min, r.stats.max);
  }
}

TEST_P(CollectiveBenchTest, PythonModeIsSlower) {
  SuiteConfig cfg = quick_cfg();
  cfg.nranks = 4;
  cfg.ppn = 4;
  cfg.opts.max_size = 256;
  cfg.mode = Mode::kNativeC;
  const double c_lat = mean_metric(run_collective(cfg, GetParam()));
  cfg.mode = Mode::kPythonDirect;
  const double py_lat = mean_metric(run_collective(cfg, GetParam()));
  EXPECT_GT(py_lat, c_lat);
}

INSTANTIATE_TEST_SUITE_P(
    AllCollectives, CollectiveBenchTest,
    ::testing::Values(CollBench::kAllgather, CollBench::kAllreduce,
                      CollBench::kAlltoall, CollBench::kBarrier,
                      CollBench::kBcast, CollBench::kGather,
                      CollBench::kReduce, CollBench::kReduceScatter,
                      CollBench::kScatter),
    [](const auto& info) { return bench_suite::to_string(info.param); });

class VectorBenchTest : public ::testing::TestWithParam<VecBench> {};

TEST_P(VectorBenchTest, RunsAndReportsPositiveLatency) {
  SuiteConfig cfg = quick_cfg();
  cfg.nranks = 4;
  cfg.ppn = 4;
  cfg.opts.max_size = 1024;
  const auto rows = bench_suite::run_vector(cfg, GetParam());
  ASSERT_FALSE(rows.empty());
  for (const auto& r : rows) EXPECT_GT(r.stats.avg, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllVector, VectorBenchTest,
    ::testing::Values(VecBench::kAllgatherv, VecBench::kAlltoallv,
                      VecBench::kGatherv, VecBench::kScatterv),
    [](const auto& info) { return bench_suite::to_string(info.param); });

TEST(GpuBenches, NumbaSlowerThanCupyAndPycuda) {
  SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::ri2_gpu();
  cfg.tuning = net::MpiTuning::mvapich2_gdr();
  cfg.nranks = 2;
  cfg.ppn = 1;
  cfg.mode = Mode::kPythonDirect;
  cfg.opts.max_size = 4096;
  cfg.opts.iterations = 3;
  cfg.opts.warmup = 1;

  const auto lat_for = [&](buffers::BufferKind k) {
    SuiteConfig c2 = cfg;
    c2.buffer = k;
    return mean_metric(bench_suite::run_latency(c2));
  };
  const double cupy = lat_for(buffers::BufferKind::kCupy);
  const double pycuda = lat_for(buffers::BufferKind::kPycuda);
  const double numba = lat_for(buffers::BufferKind::kNumba);
  EXPECT_GT(numba, cupy);
  EXPECT_GT(numba, pycuda);
  EXPECT_NEAR(cupy, pycuda, 0.25 * cupy);  // "very similar numbers"
}

TEST(Determinism, IdenticalRunsProduceIdenticalNumbers) {
  SuiteConfig cfg = quick_cfg();
  const auto a = bench_suite::run_latency(cfg);
  const auto b = bench_suite::run_latency(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].stats.avg, b[i].stats.avg);
  }
}
