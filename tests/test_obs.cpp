// Tests for the observability subsystem (obs::Metrics + the Tracer
// extensions): zero perturbation of virtual time, counter determinism and
// classification, Chrome-trace export, critical-path reduction, the
// world-rank contract on split communicators, and the overflow-proof
// Scratch range checks.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "core/report.hpp"
#include "mpi/coll_util.hpp"
#include "mpi/collectives.hpp"
#include "mpi/error.hpp"
#include "mpi/request.hpp"
#include "mpi/world.hpp"

using namespace ombx;

namespace {

mpi::WorldConfig base_world(int nranks, int ppn) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = nranks;
  wc.ppn = ppn;
  return wc;
}

// A small mixed workload between ranks 0 and 1 (other ranks idle until
// the closing barrier): an eager message, a rendezvous-sized transfer,
// and a self message — enough to light up every protocol counter
// deterministically.
void mixed_program(mpi::Comm& c) {
  std::vector<std::byte> small(64);
  std::vector<std::byte> big(64 * 1024);
  if (c.rank() == 0) {
    c.send(mpi::ConstView{small.data(), small.size()}, 1, 1);
    c.send(mpi::ConstView{big.data(), big.size()}, 1, 2);
    auto req = c.isend(mpi::ConstView{small.data(), small.size()}, 0, 3);
    (void)c.recv(mpi::MutView{small.data(), small.size()}, 0, 3);
    req.wait();
  } else if (c.rank() == 1) {
    (void)c.recv(mpi::MutView{small.data(), small.size()}, 0, 1);
    (void)c.recv(mpi::MutView{big.data(), big.size()}, 0, 2);
  }
  mpi::barrier(c);
}

std::uint64_t counter(const obs::Metrics::Snapshot& snap,
                      const std::string& name, int rank) {
  for (std::size_t c = 0; c < snap.names.size(); ++c) {
    if (snap.names[c] == name) {
      return snap.values[c][static_cast<std::size_t>(rank)];
    }
  }
  ADD_FAILURE() << "no counter named " << name;
  return 0;
}

}  // namespace

// ---- Zero perturbation ------------------------------------------------------

TEST(Obs, MetricsAndTraceDoNotPerturbVirtualTime) {
  std::vector<simtime::usec_t> plain;
  std::vector<simtime::usec_t> observed;
  for (const bool enable : {false, true}) {
    auto wc = base_world(2, 2);
    wc.enable_metrics = enable;
    wc.enable_trace = enable;
    mpi::World w(wc);
    w.run(mixed_program);
    auto& out = enable ? observed : plain;
    for (int r = 0; r < 2; ++r) out.push_back(w.finish_time(r));
  }
  ASSERT_EQ(plain.size(), observed.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i], observed[i]) << "rank " << i;
  }
}

// ---- Counter semantics ------------------------------------------------------

TEST(Obs, CountersClassifyProtocols) {
  auto wc = base_world(2, 2);  // same node: intra eager threshold 16 KiB
  wc.enable_metrics = true;
  mpi::World w(wc);
  w.run(mixed_program);
  const auto snap = w.engine().metrics()->snapshot();

  // Rank 0 posted one eager (64 B), one rendezvous (64 KiB), one self —
  // plus the closing barrier's zero-byte eager notification.
  EXPECT_EQ(counter(snap, "eager_msgs", 0), 2U);
  EXPECT_EQ(counter(snap, "eager_bytes", 0), 64U);
  EXPECT_EQ(counter(snap, "rendezvous_msgs", 0), 1U);
  EXPECT_EQ(counter(snap, "rendezvous_bytes", 0), 64U * 1024U);
  EXPECT_EQ(counter(snap, "self_msgs", 0), 1U);
  EXPECT_EQ(counter(snap, "self_bytes", 0), 64U);
  // The two 64 B payloads ride inline; the 64 KiB blocking rendezvous
  // send travels zero-copy (no payload tier) and the barrier message
  // carries no bytes, so inline accounts for every tiered payload.
  EXPECT_EQ(counter(snap, "payload_inline", 0), 2U);
  EXPECT_EQ(counter(snap, "payload_pooled", 0) +
                counter(snap, "payload_heap", 0),
            0U);
  // Receives were posted where the program posted them (plus whatever the
  // closing barrier adds on both ranks).
  EXPECT_GE(counter(snap, "recvs_posted", 1), 2U);
  EXPECT_GE(counter(snap, "recvs_posted", 0), 1U);
  // No faults were injected.
  EXPECT_EQ(counter(snap, "poisoned_waits", 0), 0U);
  EXPECT_EQ(counter(snap, "retransmits", 0), 0U);
}

TEST(Obs, CountersAreDeterministicAcrossRuns) {
  const auto run_once = [] {
    auto wc = base_world(4, 4);
    wc.enable_metrics = true;
    mpi::World w(wc);
    w.run([](mpi::Comm& c) {
      std::vector<float> a(256, 1.0F);
      std::vector<float> b(256);
      mpi::allreduce(c,
                     mpi::ConstView{reinterpret_cast<std::byte*>(a.data()),
                                    a.size() * 4},
                     mpi::MutView{reinterpret_cast<std::byte*>(b.data()),
                                  b.size() * 4},
                     mpi::Datatype::kFloat, mpi::Op::kSum);
      mixed_program(c);
    });
    std::ostringstream os;
    core::metrics_table(w.engine().metrics()->snapshot()).write_csv(os);
    return os.str();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Obs, CountersResetBetweenRuns) {
  auto wc = base_world(2, 2);
  wc.enable_metrics = true;
  mpi::World w(wc);
  w.run(mixed_program);
  EXPECT_GT(counter(w.engine().metrics()->snapshot(), "eager_msgs", 0), 0U);
  w.run([](mpi::Comm&) {});
  const auto snap = w.engine().metrics()->snapshot();
  for (std::size_t c = 0; c < snap.names.size(); ++c) {
    for (std::size_t r = 0; r < snap.values[c].size(); ++r) {
      EXPECT_EQ(snap.values[c][r], 0U)
          << snap.names[c] << " rank " << r;
    }
  }
}

TEST(Obs, MailboxCountersSeeExactAndWildcard) {
  auto wc = base_world(2, 2);
  wc.enable_metrics = true;
  mpi::World w(wc);
  w.run([](mpi::Comm& c) {
    std::vector<std::byte> buf(16);
    if (c.rank() == 0) {
      c.send(mpi::ConstView{buf.data(), buf.size()}, 1, 5);
      c.send(mpi::ConstView{buf.data(), buf.size()}, 1, 6);
      c.send(mpi::ConstView{buf.data(), buf.size()}, 1, 6);
    } else {
      (void)c.recv(mpi::MutView{buf.data(), buf.size()}, 0, 5);
      (void)c.recv(mpi::MutView{buf.data(), buf.size()}, 0, 6);
      (void)c.recv(mpi::MutView{buf.data(), buf.size()}, mpi::kAnySource,
                   mpi::kAnyTag);
    }
  });
  const auto snap = w.engine().metrics()->snapshot();
  // First two receives match on distinct bins (tag 5 then tag 6): one
  // exact hit, then — tag 6 being a fresh bin — another exact hit unless
  // it repeats the MRU bin.  The wildcard receive scans.
  EXPECT_EQ(counter(snap, "mailbox_wildcard_scans", 1), 1U);
  EXPECT_EQ(counter(snap, "mailbox_exact_hits", 1) +
                counter(snap, "mailbox_mru_hits", 1),
            2U);
  EXPECT_EQ(counter(snap, "recvs_posted", 1), 3U);
}

TEST(Obs, MruHitCountsRepeatDequeueFromSameBin) {
  auto wc = base_world(2, 2);
  wc.enable_metrics = true;
  mpi::World w(wc);
  w.run([](mpi::Comm& c) {
    std::vector<std::byte> buf(16);
    for (int i = 0; i < 4; ++i) {
      if (c.rank() == 0) {
        c.send(mpi::ConstView{buf.data(), buf.size()}, 1, 9);
      } else {
        (void)c.recv(mpi::MutView{buf.data(), buf.size()}, 0, 9);
      }
    }
  });
  const auto snap = w.engine().metrics()->snapshot();
  // Same (src, tag) bin every time: the first dequeue is exact, the
  // remaining three repeat the MRU bin.
  EXPECT_EQ(counter(snap, "mailbox_exact_hits", 1), 1U);
  EXPECT_EQ(counter(snap, "mailbox_mru_hits", 1), 3U);
}

// ---- Golden table for a tiny ping-pong (satellite d) ------------------------

TEST(Obs, GoldenMetricsCsvForTwoRankPingpong) {
  auto wc = base_world(2, 2);
  wc.enable_metrics = true;
  mpi::World w(wc);
  w.run([](mpi::Comm& c) {
    std::vector<std::byte> buf(32);
    if (c.rank() == 0) {
      c.send(mpi::ConstView{buf.data(), buf.size()}, 1, 0);
      (void)c.recv(mpi::MutView{buf.data(), buf.size()}, 1, 0);
    } else {
      (void)c.recv(mpi::MutView{buf.data(), buf.size()}, 0, 0);
      c.send(mpi::ConstView{buf.data(), buf.size()}, 0, 0);
    }
  });
  std::ostringstream os;
  core::metrics_table(w.engine().metrics()->snapshot()).write_csv(os);
  const std::string golden =
      "Counter,Rank,Value\n"
      "eager_msgs,0,1\n"
      "eager_msgs,1,1\n"
      "eager_bytes,0,32\n"
      "eager_bytes,1,32\n"
      "rendezvous_msgs,0,0\n"
      "rendezvous_msgs,1,0\n"
      "rendezvous_bytes,0,0\n"
      "rendezvous_bytes,1,0\n"
      "self_msgs,0,0\n"
      "self_msgs,1,0\n"
      "self_bytes,0,0\n"
      "self_bytes,1,0\n"
      "payload_inline,0,1\n"
      "payload_inline,1,1\n"
      "payload_pooled,0,0\n"
      "payload_pooled,1,0\n"
      "payload_heap,0,0\n"
      "payload_heap,1,0\n"
      "mailbox_exact_hits,0,1\n"
      "mailbox_exact_hits,1,1\n"
      "mailbox_mru_hits,0,0\n"
      "mailbox_mru_hits,1,0\n"
      "mailbox_wildcard_scans,0,0\n"
      "mailbox_wildcard_scans,1,0\n"
      "recvs_posted,0,1\n"
      "recvs_posted,1,1\n"
      "probes_posted,0,0\n"
      "probes_posted,1,0\n"
      "rendezvous_waits,0,0\n"
      "rendezvous_waits,1,0\n"
      "poisoned_waits,0,0\n"
      "poisoned_waits,1,0\n"
      "retransmits,0,0\n"
      "retransmits,1,0\n"
      "ft_detections,0,0\n"
      "ft_detections,1,0\n"
      "ft_revokes,0,0\n"
      "ft_revokes,1,0\n"
      "ft_shrinks,0,0\n"
      "ft_shrinks,1,0\n"
      "ft_agreements,0,0\n"
      "ft_agreements,1,0\n"
      "sched_wildcard_decisions,0,0\n"
      "sched_wildcard_decisions,1,0\n"
      "sched_forced_divergences,0,0\n"
      "sched_forced_divergences,1,0\n"
      "sched_ft_wake_ties,0,0\n"
      "sched_ft_wake_ties,1,0\n"
      "sched_rendezvous_claims,0,0\n"
      "sched_rendezvous_claims,1,0\n"
      "ckpt_checkpoints,0,0\n"
      "ckpt_checkpoints,1,0\n"
      "ckpt_bytes_replicated,0,0\n"
      "ckpt_bytes_replicated,1,0\n"
      "ckpt_restores,0,0\n"
      "ckpt_restores,1,0\n"
      "ckpt_rolled_back_us,0,0\n"
      "ckpt_rolled_back_us,1,0\n";
  EXPECT_EQ(os.str(), golden);
}

// ---- Span attribution -------------------------------------------------------

TEST(Obs, CollectiveSpansCarryAttribution) {
  auto wc = base_world(4, 4);
  wc.enable_trace = true;
  mpi::World w(wc);
  w.run([](mpi::Comm& c) {
    std::vector<float> a(64, 1.0F);
    std::vector<float> b(64);
    mpi::allreduce(c,
                   mpi::ConstView{reinterpret_cast<std::byte*>(a.data()),
                                  a.size() * 4},
                   mpi::MutView{reinterpret_cast<std::byte*>(b.data()),
                                b.size() * 4},
                   mpi::Datatype::kFloat, mpi::Op::kSum);
  });
  const mpi::Tracer* t = w.engine().tracer();
  ASSERT_NE(t, nullptr);
  int spans = 0;
  for (int r = 0; r < 4; ++r) {
    for (const auto& ev : t->events_of(r)) {
      if (ev.kind != mpi::TraceKind::kSpan) continue;
      ++spans;
      EXPECT_EQ(ev.attr.rfind("allreduce/", 0), 0U) << ev.attr;
      EXPECT_NE(ev.attr.find("/256B"), std::string::npos) << ev.attr;
      EXPECT_LE(ev.t_start, ev.t_end);
    }
  }
  EXPECT_EQ(spans, 4);  // one span per rank per collective call
}

TEST(Obs, PointToPointEventsCarryProtocolAttr) {
  auto wc = base_world(2, 2);
  wc.enable_trace = true;
  mpi::World w(wc);
  w.run(mixed_program);
  const mpi::Tracer* t = w.engine().tracer();
  int eager = 0;
  int rendezvous = 0;
  int self = 0;
  for (int r = 0; r < 2; ++r) {
    for (const auto& ev : t->events_of(r)) {
      if (ev.kind != mpi::TraceKind::kSend) continue;
      if (ev.attr == "eager") ++eager;
      if (ev.attr == "rendezvous") ++rendezvous;
      if (ev.attr == "self") ++self;
    }
  }
  EXPECT_GE(eager, 1);
  EXPECT_EQ(rendezvous, 1);
  EXPECT_EQ(self, 1);
}

// ---- World ranks on split communicators (satellite a) -----------------------

TEST(Obs, SplitCommunicatorTracesWorldRanks) {
  auto wc = base_world(4, 4);
  wc.enable_trace = true;
  mpi::World w(wc);
  // split() itself coordinates over the *parent* comm (legitimately
  // crossing the halves), so note each rank's clock after a world
  // barrier and only judge events recorded after it: the sub-comm
  // allreduce.
  std::array<simtime::usec_t, 4> after_setup{};
  w.run([&after_setup](mpi::Comm& c) {
    auto sub = c.split(c.rank() % 2, c.rank());
    ASSERT_TRUE(sub.has_value());
    mpi::barrier(c);
    after_setup[static_cast<std::size_t>(c.rank())] = c.now();
    std::vector<float> a(16, 1.0F);
    std::vector<float> b(16);
    mpi::allreduce(*sub,
                   mpi::ConstView{reinterpret_cast<std::byte*>(a.data()),
                                  a.size() * 4},
                   mpi::MutView{reinterpret_cast<std::byte*>(b.data()),
                                b.size() * 4},
                   mpi::Datatype::kFloat, mpi::Op::kSum);
  });
  const mpi::Tracer* t = w.engine().tracer();
  ASSERT_NE(t, nullptr);
  // Even world ranks {0,2} talk only to each other, odd ranks {1,3}
  // likewise.  Had any call site leaked a comm-local rank, an event under
  // world rank 2 or 3 would name peer 0 or 1 of the *sub*communicator.
  for (int r = 0; r < 4; ++r) {
    int checked = 0;
    for (const auto& ev : t->events_of(r)) {
      if (ev.t_start < after_setup[static_cast<std::size_t>(r)]) continue;
      EXPECT_EQ(ev.rank, r);
      if (ev.peer >= 0) {
        ++checked;
        EXPECT_EQ(ev.peer % 2, r % 2)
            << "event on world rank " << r << " names peer " << ev.peer
            << " from the other split half — comm-local rank leak";
        EXPECT_NE(ev.peer, r);
      }
    }
    EXPECT_GT(checked, 0) << "world rank " << r
                          << " recorded no sub-comm transfers";
  }
}

// ---- Chrome trace export ----------------------------------------------------

TEST(Obs, ChromeJsonHasCompleteEventsAndCriticalPath) {
  auto wc = base_world(2, 2);
  wc.enable_trace = true;
  mpi::World w(wc);
  w.run([](mpi::Comm& c) {
    std::vector<std::byte> buf(128);
    if (c.rank() == 0) {
      c.send(mpi::ConstView{buf.data(), buf.size()}, 1, 2);
    } else {
      (void)c.recv(mpi::MutView{buf.data(), buf.size()}, 0, 2);
    }
  });
  std::ostringstream os;
  w.engine().tracer()->write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_path_us\""), std::string::npos);
  // Both rank tracks appear.
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  // Crude but effective structural check: braces and brackets balance.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Obs, CriticalPathCoversTheTransfer) {
  auto wc = base_world(2, 2);
  wc.enable_trace = true;
  mpi::World w(wc);
  w.run([](mpi::Comm& c) {
    std::vector<std::byte> buf(256);
    if (c.rank() == 0) {
      c.send(mpi::ConstView{buf.data(), buf.size()}, 1, 4);
    } else {
      (void)c.recv(mpi::MutView{buf.data(), buf.size()}, 0, 4);
    }
  });
  const auto cp = w.engine().tracer()->critical_path();
  ASSERT_FALSE(cp.chain.empty());
  EXPECT_GT(cp.total_us, 0.0);
  // The chain ends at the event finishing last (the receive).
  EXPECT_EQ(cp.chain.back().kind, mpi::TraceKind::kRecv);
  // Dependency order: each step starts no earlier than its predecessor.
  for (std::size_t i = 1; i < cp.chain.size(); ++i) {
    EXPECT_GE(cp.chain[i].t_start, cp.chain[i - 1].t_start);
  }
  // Spans never enter the chain.
  for (const auto& ev : cp.chain) {
    EXPECT_NE(ev.kind, mpi::TraceKind::kSpan);
  }
}

TEST(Obs, CriticalPathEmptyTracerIsZero) {
  mpi::Tracer t(2);
  const auto cp = t.critical_path();
  EXPECT_EQ(cp.total_us, 0.0);
  EXPECT_TRUE(cp.chain.empty());
}

// ---- Scratch / slice overflow-proof range checks (satellite c) --------------

TEST(ScratchRange, RejectsWrappingOffsets) {
  mpi::detail::Scratch s(64, true, net::MemSpace::kHost);
  constexpr std::size_t kHuge = std::numeric_limits<std::size_t>::max();
  // off + len wraps to a small number; the naive `off + len <= bytes`
  // check would accept these.
  EXPECT_THROW((void)s.cview(16, kHuge - 8), mpi::Error);
  EXPECT_THROW((void)s.mview(16, kHuge - 8), mpi::Error);
  EXPECT_THROW((void)s.cview(kHuge, 32), mpi::Error);
  EXPECT_THROW((void)s.cview(65, 0), mpi::Error);
  // In-range requests still work, including the empty tail view.
  EXPECT_EQ(s.cview(0, 64).bytes, 64U);
  EXPECT_EQ(s.cview(64, 0).bytes, 0U);
  EXPECT_EQ(s.cview(32, 32).bytes, 32U);
}

TEST(ScratchRange, SliceHelpersRejectWrappingOffsets) {
  std::vector<std::byte> store(64);
  mpi::ConstView cv{store.data(), store.size()};
  mpi::MutView mv{store.data(), store.size()};
  constexpr std::size_t kHuge = std::numeric_limits<std::size_t>::max();
  EXPECT_THROW((void)mpi::detail::slice(cv, 16, kHuge - 8), mpi::Error);
  EXPECT_THROW((void)mpi::detail::slice(mv, 16, kHuge - 8), mpi::Error);
  EXPECT_THROW((void)mpi::detail::slice(cv, kHuge, 1), mpi::Error);
  EXPECT_EQ(mpi::detail::slice(cv, 16, 48).bytes, 48U);
  EXPECT_EQ(mpi::detail::slice(mv, 64, 0).bytes, 0U);
}
