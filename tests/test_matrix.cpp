// Cross-product smoke matrix: every (cluster x mode x buffer-class)
// combination drives the latency and allreduce benchmarks and must
// produce physically sane, deterministic numbers.  This is the coverage
// net that catches configuration-dependent regressions the focused tests
// miss.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "bench_suite/suite.hpp"
#include "core/runner.hpp"

using namespace ombx;
using core::Mode;
using core::SuiteConfig;

namespace {

net::ClusterSpec cluster_by_name(const std::string& name) {
  if (name == "frontera") return net::ClusterSpec::frontera();
  if (name == "stampede2") return net::ClusterSpec::stampede2();
  if (name == "ri2") return net::ClusterSpec::ri2();
  return net::ClusterSpec::ri2_gpu();
}

struct MatrixCase {
  std::string cluster;
  Mode mode;
  buffers::BufferKind buffer;
};

std::string case_name(const MatrixCase& c) {
  std::string m = core::to_string(c.mode);
  for (auto& ch : m) {
    if (ch == '-') ch = '_';
  }
  std::string cl = c.cluster;
  for (auto& ch : cl) {
    if (ch == '-') ch = '_';
  }
  return cl + "_" + m + "_" + buffers::to_string(c.buffer);
}

class BenchMatrix : public ::testing::TestWithParam<MatrixCase> {
 protected:
  SuiteConfig make_cfg() const {
    const MatrixCase& p = GetParam();
    SuiteConfig cfg;
    cfg.cluster = cluster_by_name(p.cluster);
    cfg.tuning = buffers::is_gpu(p.buffer) ? net::MpiTuning::mvapich2_gdr()
                                           : net::MpiTuning::mvapich2();
    cfg.mode = p.mode;
    cfg.buffer = p.buffer;
    cfg.nranks = 2;
    cfg.ppn = buffers::is_gpu(p.buffer) ? 1 : 2;
    cfg.opts.max_size = 1 << 14;
    cfg.opts.iterations = 3;
    cfg.opts.warmup = 1;
    cfg.opts.validate = true;
    return cfg;
  }
};

}  // namespace

TEST_P(BenchMatrix, LatencyIsSaneAndDeterministic) {
  const SuiteConfig cfg = make_cfg();
  const auto a = bench_suite::run_latency(cfg);
  ASSERT_EQ(a.size(), cfg.opts.sizes().size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GT(a[i].stats.avg, 0.0);
    EXPECT_LT(a[i].stats.avg, 1e6);  // under a second per message
    if (i > 0) {
      EXPECT_GE(a[i].stats.avg, a[i - 1].stats.avg * 0.99);
    }
  }
  const auto b = bench_suite::run_latency(cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].stats.avg, b[i].stats.avg);
  }
}

TEST_P(BenchMatrix, AllreduceIsSane) {
  if (GetParam().mode == Mode::kPythonPickle) {
    GTEST_SKIP() << "collective pickle benchmarking is not in v1";
  }
  SuiteConfig cfg = make_cfg();
  cfg.nranks = 4;
  cfg.ppn = buffers::is_gpu(cfg.buffer) ? 1 : 4;
  cfg.opts.validate = false;
  const auto rows =
      bench_suite::run_collective(cfg, bench_suite::CollBench::kAllreduce);
  for (const auto& r : rows) {
    EXPECT_GT(r.stats.avg, 0.0);
    EXPECT_LE(r.stats.min, r.stats.avg);
    EXPECT_GE(r.stats.max, r.stats.avg);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CpuClusters, BenchMatrix,
    ::testing::Values(
        MatrixCase{"frontera", Mode::kNativeC, buffers::BufferKind::kNumpy},
        MatrixCase{"frontera", Mode::kPythonDirect,
                   buffers::BufferKind::kNumpy},
        MatrixCase{"frontera", Mode::kPythonDirect,
                   buffers::BufferKind::kByteArray},
        MatrixCase{"frontera", Mode::kPythonPickle,
                   buffers::BufferKind::kNumpy},
        MatrixCase{"stampede2", Mode::kNativeC,
                   buffers::BufferKind::kNumpy},
        MatrixCase{"stampede2", Mode::kPythonDirect,
                   buffers::BufferKind::kNumpy},
        MatrixCase{"stampede2", Mode::kPythonPickle,
                   buffers::BufferKind::kByteArray},
        MatrixCase{"ri2", Mode::kNativeC, buffers::BufferKind::kNumpy},
        MatrixCase{"ri2", Mode::kPythonDirect,
                   buffers::BufferKind::kByteArray},
        MatrixCase{"ri2", Mode::kPythonPickle,
                   buffers::BufferKind::kNumpy}),
    [](const auto& info) { return case_name(info.param); });

INSTANTIATE_TEST_SUITE_P(
    GpuCluster, BenchMatrix,
    ::testing::Values(
        MatrixCase{"ri2-gpu", Mode::kNativeC, buffers::BufferKind::kCupy},
        MatrixCase{"ri2-gpu", Mode::kPythonDirect,
                   buffers::BufferKind::kCupy},
        MatrixCase{"ri2-gpu", Mode::kPythonDirect,
                   buffers::BufferKind::kPycuda},
        MatrixCase{"ri2-gpu", Mode::kPythonDirect,
                   buffers::BufferKind::kNumba}),
    [](const auto& info) { return case_name(info.param); });

// ---- Suite-wide cross checks -----------------------------------------------------

TEST(MatrixCross, EveryRegisteredBenchmarkRunsOnDefaults) {
  core::register_suite();
  for (const std::string& name : core::Registry::instance().names()) {
    const auto* info = core::Registry::instance().find(name);
    ASSERT_NE(info, nullptr);
    core::SuiteConfig cfg;
    cfg.nranks = info->category == core::Category::kPointToPoint ||
                         info->category == core::Category::kOneSided
                     ? 2
                     : 4;
    cfg.ppn = cfg.nranks;
    cfg.opts.max_size = 1024;
    cfg.opts.iterations = 2;
    cfg.opts.warmup = 1;
    const auto rows = info->fn(cfg);
    EXPECT_FALSE(rows.empty()) << name;
    for (const auto& r : rows) {
      EXPECT_GT(r.stats.avg, 0.0) << name;
    }
  }
}

TEST(MatrixCross, GpuLatencyExceedsCpuLatency) {
  // Device buffers ride a higher-startup path than host shm.
  core::SuiteConfig cpu;
  cpu.cluster = net::ClusterSpec::ri2();
  cpu.nranks = 2;
  cpu.ppn = 1;
  cpu.mode = Mode::kNativeC;
  cpu.opts.min_size = 8;
  cpu.opts.max_size = 8;
  cpu.opts.iterations = 2;
  cpu.opts.warmup = 1;

  core::SuiteConfig gpu = cpu;
  gpu.cluster = net::ClusterSpec::ri2_gpu();
  gpu.tuning = net::MpiTuning::mvapich2_gdr();
  gpu.buffer = buffers::BufferKind::kCupy;

  EXPECT_GT(bench_suite::run_latency(gpu).front().stats.avg,
            bench_suite::run_latency(cpu).front().stats.avg);
}

TEST(MatrixCross, InterNodeSlowerThanIntraNodeEverywhere) {
  for (const char* name : {"frontera", "stampede2", "ri2"}) {
    core::SuiteConfig intra;
    intra.cluster = cluster_by_name(name);
    intra.nranks = 2;
    intra.ppn = 2;
    intra.mode = Mode::kNativeC;
    intra.opts.min_size = 64;
    intra.opts.max_size = 64;
    intra.opts.iterations = 2;
    intra.opts.warmup = 1;
    core::SuiteConfig inter = intra;
    inter.ppn = 1;
    EXPECT_GT(bench_suite::run_latency(inter).front().stats.avg,
              bench_suite::run_latency(intra).front().stats.avg)
        << name;
  }
}
