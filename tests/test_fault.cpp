// Fault-injection and failure-propagation tests: abort propagation (no
// hang when a rank dies mid-collective), poisoned capacity-blocked
// senders, truncated-receive attribution, seeded drop/retransmit
// determinism, degradation windows, stragglers, rank kills, the deadlock
// watchdog, and runner-level retry.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/runner.hpp"
#include "mpi/collectives.hpp"
#include "mpi/error.hpp"
#include "mpi/world.hpp"
#include "sched/sched.hpp"

using namespace ombx;
using mpi::Comm;
using mpi::ConstView;
using mpi::MutView;

namespace {

mpi::WorldConfig small_world(int nranks, int ppn = 2) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = nranks;
  wc.ppn = ppn;
  return wc;
}

ConstView cv(const std::vector<std::byte>& v) {
  return ConstView{v.data(), v.size()};
}
MutView mv(std::vector<std::byte>& v) { return MutView{v.data(), v.size()}; }

struct PingpongResult {
  double finish = 0.0;  ///< rank 0's virtual finish time
  std::uint64_t retransmits = 0;
  std::uint64_t degraded = 0;
  bool had_plan = false;
};

/// A (possibly fault-injected) 2-rank ping-pong.
PingpongResult pingpong(const mpi::WorldConfig& wc, std::size_t bytes,
                        int iters) {
  mpi::World w(wc);
  w.run([&](Comm& c) {
    std::vector<std::byte> sbuf(bytes, std::byte{0x5a});
    std::vector<std::byte> rbuf(bytes);
    for (int i = 0; i < iters; ++i) {
      if (c.rank() == 0) {
        c.send(cv(sbuf), 1, 7);
        (void)c.recv(mv(rbuf), 1, 7);
      } else {
        (void)c.recv(mv(rbuf), 0, 7);
        c.send(cv(sbuf), 0, 7);
      }
    }
  });
  PingpongResult out;
  out.finish = w.finish_time(0);
  if (const fault::FaultPlan* plan = w.fault_plan()) {
    out.had_plan = true;
    out.retransmits = plan->counters().retransmits.load();
    out.degraded = plan->counters().degraded_messages.load();
  }
  return out;
}

double pingpong_finish_time(const mpi::WorldConfig& wc, std::size_t bytes,
                            int iters) {
  return pingpong(wc, bytes, iters).finish;
}

}  // namespace

// ---- Abort propagation ------------------------------------------------------

TEST(AbortPropagation, RankThrowDuringAllreduceWakesAllPeers) {
  // Acceptance criterion: one rank throws during an Allreduce while 7
  // peers are blocked; the run completes with AbortedError naming the
  // origin rank on every peer — no hang.
  constexpr int kRanks = 8;
  constexpr int kFailing = 3;
  mpi::World w(small_world(kRanks, /*ppn=*/4));
  std::array<std::atomic<bool>, kRanks> saw_abort{};
  std::array<std::atomic<int>, kRanks> origin{};

  EXPECT_THROW(
      w.run([&](Comm& c) {
        std::vector<double> acc(256, 1.0);
        std::vector<double> out(256, 0.0);
        if (c.rank() == kFailing) {
          throw std::runtime_error("injected failure before collective");
        }
        try {
          mpi::allreduce(
              c,
              ConstView{reinterpret_cast<const std::byte*>(acc.data()),
                        acc.size() * sizeof(double)},
              MutView{reinterpret_cast<std::byte*>(out.data()),
                      out.size() * sizeof(double)},
              mpi::Datatype::kDouble, mpi::Op::kSum);
        } catch (const mpi::AbortedError& e) {
          saw_abort[static_cast<std::size_t>(c.rank())] = true;
          origin[static_cast<std::size_t>(c.rank())] = e.origin_rank();
          throw;
        }
      }),
      std::runtime_error);

  for (int r = 0; r < kRanks; ++r) {
    if (r == kFailing) continue;
    EXPECT_TRUE(saw_abort[static_cast<std::size_t>(r)].load())
        << "rank " << r << " was not woken by the abort";
    EXPECT_EQ(origin[static_cast<std::size_t>(r)].load(), kFailing)
        << "rank " << r << " saw the wrong origin rank";
  }
}

TEST(AbortPropagation, RootCauseIsRethrownNotThePropagatedAbort) {
  mpi::World w(small_world(4));
  try {
    w.run([](Comm& c) {
      if (c.rank() == 2) throw std::runtime_error("root cause");
      std::vector<std::byte> buf(8);
      (void)c.recv(mv(buf), (c.rank() + 1) % c.size(), 0);
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "root cause");
  }
}

TEST(AbortPropagation, CapacityBlockedSenderIsPoisonedAwake) {
  // Satellite fix: a sender blocked because the destination mailbox is
  // full must also be woken by the abort instead of hanging forever.
  mpi::WorldConfig wc = small_world(2);
  wc.mailbox_capacity = 4;
  mpi::World w(wc);
  std::atomic<bool> sender_aborted{false};

  EXPECT_THROW(
      w.run([&](Comm& c) {
        if (c.rank() == 0) {
          std::vector<std::byte> one(1, std::byte{1});
          try {
            for (int i = 0; i < 1000; ++i) c.send(cv(one), 1, 3);
          } catch (const mpi::AbortedError& e) {
            sender_aborted = true;
            EXPECT_EQ(e.origin_rank(), 1);
            throw;
          }
        } else {
          // Never receive; die instead.
          throw std::runtime_error("receiver died");
        }
      }),
      std::runtime_error);
  EXPECT_TRUE(sender_aborted.load());
}

TEST(AbortPropagation, PoisonWakesSenderBlockedBehindManyBins) {
  // The binned mailbox must wake a capacity-blocked sender no matter
  // which bins hold the backlog: fill the destination with one message
  // per tag (four distinct bins), block on the fifth, then kill the
  // receiver.
  mpi::WorldConfig wc = small_world(2);
  wc.mailbox_capacity = 4;
  mpi::World w(wc);
  std::atomic<bool> box_full{false};
  std::atomic<bool> sender_aborted{false};

  EXPECT_THROW(
      w.run([&](Comm& c) {
        if (c.rank() == 0) {
          std::vector<std::byte> one(1, std::byte{1});
          try {
            for (int t = 0; t < 4; ++t) c.send(cv(one), 1, t);
            box_full = true;
            c.send(cv(one), 1, 4);  // blocks on capacity
            for (int t = 5; t < 64; ++t) c.send(cv(one), 1, t);
          } catch (const mpi::AbortedError& e) {
            sender_aborted = true;
            EXPECT_EQ(e.origin_rank(), 1);
            throw;
          }
        } else {
          // Yield the fiber, not just the thread: on a one-worker pool a
          // plain thread yield would starve the sender this loop awaits.
          while (!box_full.load()) {
            sched::maybe_yield();
            std::this_thread::yield();
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          throw std::runtime_error("receiver died with full bins");
        }
      }),
      std::runtime_error);
  EXPECT_TRUE(sender_aborted.load());

  // reset() must have drained every bin: a clean rerun works and sees
  // none of the stale backlog.
  w.run([](Comm& c) {
    std::vector<std::byte> buf(8, std::byte{7});
    if (c.rank() == 0) {
      c.send(cv(buf), 1, 0);
    } else {
      const mpi::Status st = c.recv(mv(buf), 0, 0);
      EXPECT_EQ(st.bytes, 8u) << "stale pre-abort message leaked into rerun";
    }
  });
}

TEST(AbortPropagation, RendezvousSenderIsPoisonedAwake) {
  // A rendezvous send blocks on its SyncCell until the receiver matches;
  // if the receiver dies first the cell must be poisoned.
  mpi::World w(small_world(2));
  std::atomic<bool> sender_aborted{false};
  const std::size_t big = 1 << 20;  // far beyond any eager threshold

  EXPECT_THROW(
      w.run([&](Comm& c) {
        if (c.rank() == 0) {
          std::vector<std::byte> data(big, std::byte{0x42});
          try {
            c.send(cv(data), 1, 9);
          } catch (const mpi::AbortedError&) {
            sender_aborted = true;
            throw;
          }
        } else {
          throw std::runtime_error("receiver died before matching");
        }
      }),
      std::runtime_error);
  EXPECT_TRUE(sender_aborted.load());
}

TEST(AbortPropagation, WorldIsReusableAfterAbort) {
  mpi::World w(small_world(2));
  EXPECT_THROW(w.run([](Comm& c) {
                 if (c.rank() == 0) throw std::runtime_error("boom");
                 std::vector<std::byte> buf(8);
                 (void)c.recv(mv(buf), 0, 0);
               }),
               std::runtime_error);
  // The poison must be cleared: a healthy program runs to completion.
  w.run([](Comm& c) {
    std::vector<std::byte> buf(8, std::byte{7});
    if (c.rank() == 0) {
      c.send(cv(buf), 1, 1);
    } else {
      (void)c.recv(mv(buf), 0, 1);
    }
  });
  SUCCEED();
}

// ---- Error attribution ------------------------------------------------------

TEST(ErrorAttribution, TruncatedRecvNamesRankAndContext) {
  mpi::World w(small_world(2));
  try {
    w.run([](Comm& c) {
      if (c.rank() == 0) {
        std::vector<std::byte> data(64, std::byte{1});
        c.send(cv(data), 1, 5);
      } else {
        std::vector<std::byte> tiny(8);
        (void)c.recv(mv(tiny), 0, 5);
      }
    });
    FAIL() << "expected truncation error";
  } catch (const mpi::Error& e) {
    EXPECT_EQ(e.rank(), 1);
    EXPECT_EQ(e.context(), 0);
    EXPECT_NE(std::string(e.what()).find("rank 1"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST(ErrorAttribution, AbortedErrorCarriesOriginAndReason) {
  const fault::AbortInfo info{2, "synthetic reason", false};
  const mpi::AbortedError e(info);
  EXPECT_EQ(e.origin_rank(), 2);
  EXPECT_EQ(e.reason(), "synthetic reason");
  EXPECT_NE(std::string(e.what()).find("origin rank 2"), std::string::npos);
}

// ---- Seeded fault plans -----------------------------------------------------

TEST(FaultPlan, SameSeedSameScheduleDifferentSeedDifferentSchedule) {
  // Acceptance criterion: two runs with the same seed produce
  // byte-identical retransmit counts and virtual-time results; a
  // different seed produces a different fault schedule.
  mpi::WorldConfig wc = small_world(2, /*ppn=*/1);  // inter-node link
  wc.fault.seed = 42;
  wc.fault.drop.probability = 0.25;
  wc.fault.drop.retransmit_timeout_us = 40.0;

  const PingpongResult a = pingpong(wc, 512, 200);
  const PingpongResult b = pingpong(wc, 512, 200);
  ASSERT_TRUE(a.had_plan) << "fault plan expected";
  EXPECT_GT(a.retransmits, 0U) << "p=0.25 over 400 sends must drop something";
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.finish, b.finish);  // byte-identical virtual time

  wc.fault.seed = 43;
  const PingpongResult c = pingpong(wc, 512, 200);
  EXPECT_TRUE(c.retransmits != a.retransmits || c.finish != a.finish)
      << "different seed produced an identical fault schedule";
}

TEST(FaultPlan, RetransmitsChargeVirtualTime) {
  mpi::WorldConfig clean = small_world(2, /*ppn=*/1);
  mpi::WorldConfig faulty = clean;
  faulty.fault.seed = 7;
  faulty.fault.drop.probability = 0.5;
  faulty.fault.drop.retransmit_timeout_us = 100.0;

  const PingpongResult r = pingpong(faulty, 256, 100);
  const double t_clean = pingpong_finish_time(clean, 256, 100);
  EXPECT_GT(r.retransmits, 0U);
  // Every retransmit stalls the critical path of a ping-pong, so the
  // faulty run must be slower by at least one timeout per retransmit.
  EXPECT_GE(r.finish,
            t_clean + 100.0 * static_cast<double>(r.retransmits) - 1e-9);
}

TEST(FaultPlan, CorruptionFlipsPayloadBytes) {
  mpi::WorldConfig wc = small_world(2, /*ppn=*/1);
  wc.fault.seed = 1;
  wc.fault.corrupt.probability = 1.0;
  mpi::World w(wc);
  w.run([](Comm& c) {
    std::vector<std::byte> data(128, std::byte{0x11});
    if (c.rank() == 0) {
      c.send(cv(data), 1, 2);
    } else {
      std::vector<std::byte> got(128);
      (void)c.recv(mv(got), 0, 2);
      EXPECT_NE(got, data) << "p=1 corruption left the payload intact";
    }
  });
  ASSERT_NE(w.fault_plan(), nullptr);
  EXPECT_EQ(w.fault_plan()->counters().corruptions.load(), 1U);
}

TEST(FaultPlan, ScheduleIsPayloadModeIndependent) {
  // The fault schedule (drops, corruption draws, virtual-time outcomes)
  // must not depend on whether payload bytes physically travel: synthetic
  // mode exists precisely so at-scale runs reproduce real-mode timing.
  mpi::WorldConfig wc = small_world(2, /*ppn=*/1);
  wc.fault.seed = 11;
  wc.fault.drop.probability = 0.2;
  wc.fault.drop.retransmit_timeout_us = 25.0;
  wc.fault.corrupt.probability = 0.3;

  struct Outcome {
    double finish;
    std::uint64_t retransmits;
    std::uint64_t corruptions;
  };
  auto run = [&](mpi::PayloadMode mode) {
    mpi::WorldConfig cfg = wc;
    cfg.payload = mode;
    mpi::World w(cfg);
    w.run([](Comm& c) {
      std::vector<std::byte> sbuf(512, std::byte{0x5a});
      std::vector<std::byte> rbuf(512);
      for (int i = 0; i < 300; ++i) {
        if (c.rank() == 0) {
          c.send(cv(sbuf), 1, 7);
          (void)c.recv(mv(rbuf), 1, 7);
        } else {
          (void)c.recv(mv(rbuf), 0, 7);
          c.send(cv(sbuf), 0, 7);
        }
      }
    });
    return Outcome{w.finish_time(0),
                   w.fault_plan()->counters().retransmits.load(),
                   w.fault_plan()->counters().corruptions.load()};
  };

  const Outcome real = run(mpi::PayloadMode::kReal);
  const Outcome synth = run(mpi::PayloadMode::kSynthetic);
  EXPECT_GT(real.retransmits, 0u);
  EXPECT_GT(real.corruptions, 0u);
  EXPECT_EQ(real.finish, synth.finish);  // byte-identical virtual time
  EXPECT_EQ(real.retransmits, synth.retransmits);
  EXPECT_EQ(real.corruptions, synth.corruptions);
}

TEST(FaultPlan, DegradeWindowSlowsOnlyCoveredTraffic) {
  mpi::WorldConfig clean = small_world(2, /*ppn=*/1);
  const double t_clean = pingpong_finish_time(clean, 1024, 50);

  mpi::WorldConfig degraded = clean;
  degraded.fault.degrade.push_back(fault::DegradeWindow{
      net::LinkClass::kInterNode, 0.0, 1e9, /*alpha=*/4.0, /*beta=*/4.0});
  const PingpongResult r = pingpong(degraded, 1024, 50);
  EXPECT_GT(r.finish, t_clean);
  EXPECT_GT(r.degraded, 0U) << "no message fell inside the degrade window";
  // A window that never covers the run changes nothing.
  mpi::WorldConfig outside = clean;
  outside.fault.degrade.push_back(fault::DegradeWindow{
      net::LinkClass::kInterNode, 1e12, 1e13, 4.0, 4.0});
  EXPECT_EQ(pingpong_finish_time(outside, 1024, 50), t_clean);
}

TEST(FaultPlan, StragglerSlowsItsRankOnly) {
  mpi::WorldConfig clean = small_world(2, /*ppn=*/1);
  mpi::WorldConfig slow = clean;
  slow.fault.stragglers.push_back(fault::StragglerSpec{1, 8.0});

  const auto compute_time = [](const mpi::WorldConfig& wc, int rank) {
    mpi::World w(wc);
    w.run([](Comm& c) { c.charge_flops(1e6); });
    return w.finish_time(rank);
  };
  EXPECT_GT(compute_time(slow, 1), compute_time(clean, 1));
  EXPECT_EQ(compute_time(slow, 0), compute_time(clean, 0));
}

TEST(FaultPlan, KillAtVirtualTimePropagates) {
  mpi::WorldConfig wc = small_world(2, /*ppn=*/1);
  wc.fault.kills.push_back(fault::KillSpec{1, 5.0});
  mpi::World w(wc);
  std::atomic<bool> peer_aborted{false};

  try {
    w.run([&](Comm& c) {
      std::vector<std::byte> sbuf(64, std::byte{1});
      std::vector<std::byte> rbuf(64);
      try {
        for (int i = 0; i < 10000; ++i) {
          if (c.rank() == 0) {
            c.send(cv(sbuf), 1, 4);
            (void)c.recv(mv(rbuf), 1, 4);
          } else {
            (void)c.recv(mv(rbuf), 0, 4);
            c.send(cv(sbuf), 0, 4);
          }
        }
      } catch (const mpi::AbortedError& e) {
        if (c.rank() == 0) {
          peer_aborted = true;
          EXPECT_EQ(e.origin_rank(), 1);
        }
        throw;
      }
    });
    FAIL() << "expected RankKilledError";
  } catch (const mpi::RankKilledError& e) {
    EXPECT_EQ(e.rank(), 1);
  }
  EXPECT_TRUE(peer_aborted.load());
  ASSERT_NE(w.fault_plan(), nullptr);
  EXPECT_GE(w.fault_plan()->counters().kills.load(), 1U);
}

// ---- Watchdog ---------------------------------------------------------------

TEST(Watchdog, TagMismatchDeadlockIsDetectedWithWaitDump) {
  mpi::WorldConfig wc = small_world(2);
  wc.watchdog_poll_ms = 10.0;
  mpi::World w(wc);
  try {
    w.run([](Comm& c) {
      std::vector<std::byte> buf(8);
      if (c.rank() == 0) {
        std::vector<std::byte> one(8, std::byte{1});
        c.send(cv(one), 1, 1);
        (void)c.recv(mv(buf), 1, 1);  // never sent
      } else {
        (void)c.recv(mv(buf), 0, 2);  // tag mismatch: 2 was never sent
      }
    });
    FAIL() << "expected DeadlockError";
  } catch (const mpi::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_EQ(e.origin_rank(), fault::kWatchdogOrigin);
    // PARCOACH-style dump: each rank's (context, src, tag).
    EXPECT_NE(what.find("rank 0: blocked in recv"), std::string::npos)
        << what;
    EXPECT_NE(what.find("rank 1: blocked in recv"), std::string::npos)
        << what;
    EXPECT_NE(what.find("tag=2"), std::string::npos) << what;
  }
}

TEST(Watchdog, SendToSelfDeadlockDetected) {
  mpi::WorldConfig wc = small_world(2);
  wc.watchdog_poll_ms = 10.0;
  mpi::World w(wc);
  EXPECT_THROW(w.run([](Comm& c) {
                 std::vector<std::byte> buf(8);
                 // Both ranks wait on a message that never comes.
                 (void)c.recv(mv(buf), (c.rank() + 1) % c.size(), 0);
               }),
               mpi::DeadlockError);
}

TEST(Watchdog, HealthyRunDoesNotTrip) {
  mpi::WorldConfig wc = small_world(2);
  wc.watchdog_poll_ms = 5.0;  // aggressive polling on a healthy program
  mpi::World w(wc);
  w.run([](Comm& c) {
    std::vector<std::byte> sbuf(512, std::byte{2});
    std::vector<std::byte> rbuf(512);
    for (int i = 0; i < 200; ++i) {
      if (c.rank() == 0) {
        c.send(cv(sbuf), 1, 1);
        (void)c.recv(mv(rbuf), 1, 1);
      } else {
        (void)c.recv(mv(rbuf), 0, 1);
        c.send(cv(sbuf), 0, 1);
      }
    }
  });
  SUCCEED();
}

// ---- Runner retry + resilience report --------------------------------------

TEST(RunnerRetry, TransientFaultRetriesThenSucceeds) {
  mpi::World w(small_world(2));
  std::atomic<int> attempt{0};
  const core::RunOutcome out = core::run_with_retry(
      w,
      [&](Comm& c) {
        if (c.rank() == 0 && attempt.fetch_add(1) == 0) {
          throw std::runtime_error("transient");
        }
        std::vector<std::byte> buf(8, std::byte{1});
        if (c.rank() == 0) {
          c.send(cv(buf), 1, 1);
        } else {
          (void)c.recv(mv(buf), 0, 1);
        }
      },
      core::RetryPolicy{.max_attempts = 3, .backoff_ms = 0.0});
  EXPECT_TRUE(out.succeeded);
  EXPECT_EQ(out.attempts, 2);
}

TEST(RunnerRetry, PermanentFaultExhaustsAttempts) {
  mpi::World w(small_world(2));
  const core::RunOutcome out = core::run_with_retry(
      w,
      [](Comm& c) {
        if (c.rank() == 0) throw std::runtime_error("permanent");
        std::vector<std::byte> buf(8);
        (void)c.recv(mv(buf), 0, 1);
      },
      core::RetryPolicy{.max_attempts = 3, .backoff_ms = 0.0});
  EXPECT_FALSE(out.succeeded);
  EXPECT_EQ(out.attempts, 3);
  EXPECT_NE(out.last_error.find("permanent"), std::string::npos);
}

TEST(Report, ResilienceTableListsInjectionCounters) {
  mpi::WorldConfig wc = small_world(2, /*ppn=*/1);
  wc.fault.seed = 11;
  wc.fault.drop.probability = 0.3;
  const std::uint64_t re = pingpong(wc, 512, 100).retransmits;

  fault::FaultPlan plan(wc.fault, 2);
  plan.counters().retransmits.store(re);
  const core::Table table = core::resilience_table(plan);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("Resilience"), std::string::npos);
  EXPECT_NE(text.find("retransmits"), std::string::npos);
  EXPECT_NE(text.find(std::to_string(re)), std::string::npos);
  EXPECT_NE(text.find("watchdog"), std::string::npos);
}

// ---- Retry exhaustion (--drop-lost) -----------------------------------------

TEST(DropExhaustion, DefaultModelAlwaysDeliversAfterTheCap) {
  // Historical semantics: the attempt after max_retries always lands, so
  // p=1 drops only cost virtual time and nothing is ever lost.
  mpi::WorldConfig wc = small_world(2, /*ppn=*/1);
  wc.fault.seed = 5;
  wc.fault.drop.probability = 1.0;
  wc.fault.drop.max_retries = 3;
  wc.fault.drop.retransmit_timeout_us = 50.0;
  mpi::World w(wc);
  std::atomic<bool> delivered{false};

  w.run([&](Comm& c) {
    std::vector<std::byte> buf(64, std::byte{0x2a});
    if (c.rank() == 0) {
      c.send(cv(buf), 1, 4);
    } else {
      std::vector<std::byte> got(64);
      (void)c.recv(mv(got), 0, 4);
      EXPECT_EQ(got, buf);
      delivered = true;
    }
  });
  EXPECT_TRUE(delivered.load());
  ASSERT_NE(w.fault_plan(), nullptr);
  EXPECT_EQ(w.fault_plan()->counters().retransmits.load(), 3U);
  EXPECT_EQ(w.fault_plan()->counters().messages_lost.load(), 0U);
}

TEST(DropExhaustion, FailOnExhaustionRaisesRankAttributedLoss) {
  // --drop-lost: exhausting the cap loses the message for real.  The
  // sender unwinds with a MessageLostError naming both endpoints and the
  // attempt count, the blocked receiver is woken by the abort (no hang),
  // and the virtual clock still paid for every retransmission attempt.
  mpi::WorldConfig wc = small_world(2, /*ppn=*/1);
  wc.fault.seed = 5;
  wc.fault.drop.probability = 1.0;
  wc.fault.drop.max_retries = 3;
  wc.fault.drop.retransmit_timeout_us = 50.0;
  wc.fault.drop.fail_on_exhaustion = true;
  mpi::World w(wc);
  std::atomic<bool> raised{false};
  std::atomic<bool> peer_woken{false};

  EXPECT_THROW(
      w.run([&](Comm& c) {
        std::vector<std::byte> buf(64, std::byte{0x2a});
        if (c.rank() == 0) {
          try {
            c.send(cv(buf), 1, 4);
            ADD_FAILURE() << "exhausted send did not raise";
          } catch (const mpi::MessageLostError& e) {
            EXPECT_EQ(e.rank(), 0);
            EXPECT_EQ(e.dst_rank(), 1);
            EXPECT_EQ(e.attempts(), 3);
            // The failed attempts are still priced: 3 timeouts elapsed.
            EXPECT_GE(c.now(), 3 * 50.0);
            raised = true;
            throw;
          }
        } else {
          try {
            (void)c.recv(mv(buf), 0, 4);
            ADD_FAILURE() << "receiver of a lost message did not unwind";
          } catch (const mpi::AbortedError& e) {
            EXPECT_EQ(e.origin_rank(), 0);
            peer_woken = true;
            throw;
          }
        }
      }),
      mpi::MessageLostError);

  EXPECT_TRUE(raised.load());
  EXPECT_TRUE(peer_woken.load());
  ASSERT_NE(w.fault_plan(), nullptr);
  EXPECT_EQ(w.fault_plan()->counters().messages_lost.load(), 1U);
}

TEST(DropExhaustion, FlagDoesNotPerturbTheSurvivingSchedule) {
  // The drawn random stream must be identical with the flag on and off:
  // flipping --drop-lost never changes the fault schedule of messages
  // that do arrive.  With a cap deep enough that nothing exhausts, both
  // runs are byte-identical.
  mpi::WorldConfig off = small_world(2, /*ppn=*/1);
  off.fault.seed = 42;
  off.fault.drop.probability = 0.25;
  off.fault.drop.max_retries = 16;
  off.fault.drop.retransmit_timeout_us = 40.0;
  mpi::WorldConfig on = off;
  on.fault.drop.fail_on_exhaustion = true;

  const PingpongResult a = pingpong(off, 512, 200);
  const PingpongResult b = pingpong(on, 512, 200);
  EXPECT_GT(a.retransmits, 0U);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.finish, b.finish);
}

TEST(DropExhaustion, ResilienceTableReportsMessagesLost) {
  fault::FaultConfig spec;
  spec.drop.probability = 1.0;
  spec.drop.fail_on_exhaustion = true;
  fault::FaultPlan plan(spec, 2);
  plan.counters().messages_lost.store(7);
  const std::string text = core::resilience_table(plan).to_string();
  EXPECT_NE(text.find("messages lost"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
}
