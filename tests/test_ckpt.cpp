// Checkpoint/restart tests (ombx::ckpt): Store commit/complete-generation
// bookkeeping, topology-aware buddy selection, the coordinated checkpoint
// epoch (pricing, replication, obs counters), interval calibration and
// Daly mode, full kill -> shrink -> restore -> recompute recovery with
// buddy adoption, the unrecoverable double-kill path, double-run and
// threads-vs-fibers byte identity, zero perturbation when disabled, and
// fiber-pool watchdog health for concurrent FT+restore worlds at np=64.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_suite/suite.hpp"
#include "ckpt/ckpt.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"
#include "ft/ft.hpp"
#include "mpi/collectives.hpp"
#include "mpi/error.hpp"
#include "mpi/world.hpp"
#include "obs/metrics.hpp"
#include "sched/sched.hpp"

using namespace ombx;
using mpi::Comm;

namespace {

#define OMBX_SKIP_IF_SANITIZED()                                        \
  if (sched::sanitizers_active())                                       \
  GTEST_SKIP() << "fibers degrade to threads on sanitized builds"

mpi::WorldConfig ckpt_world(int nranks, int ppn) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = nranks;
  wc.ppn = ppn;
  return wc;
}

ckpt::CkptConfig enabled_cfg(double interval_us) {
  ckpt::CkptConfig c;
  c.enabled = true;
  c.interval_us = interval_us;
  return c;
}

/// Allreduce one double over `comm` and return the result.
double reduce_double(Comm& comm, double v, mpi::Op op) {
  double out = 0.0;
  mpi::allreduce(comm,
                 mpi::ConstView{reinterpret_cast<const std::byte*>(&v),
                                sizeof(v), net::MemSpace::kHost},
                 mpi::MutView{reinterpret_cast<std::byte*>(&out), sizeof(out),
                              net::MemSpace::kHost},
                 mpi::Datatype::kDouble, op);
  return out;
}

/// Named counter total across ranks from a metrics snapshot.
std::uint64_t counter_total(const obs::Metrics::Snapshot& snap,
                            const std::string& name) {
  for (std::size_t i = 0; i < snap.names.size(); ++i) {
    if (snap.names[i] != name) continue;
    std::uint64_t total = 0;
    for (const std::uint64_t v : snap.values[i]) total += v;
    return total;
  }
  ADD_FAILURE() << "counter not found: " << name;
  return 0;
}

}  // namespace

// ---- Store ------------------------------------------------------------------

TEST(CkptStore, CompleteGenerationTracksEveryRank) {
  ckpt::Store store(3);
  EXPECT_EQ(store.last_complete_generation(), -1);

  ckpt::Store::RankSnap snap;
  snap.regions.push_back(std::vector<std::byte>(16, std::byte{0x11}));
  snap.replicated = true;

  store.commit(0, 0, snap);
  store.commit(0, 1, snap);
  EXPECT_EQ(store.last_complete_generation(), -1) << "rank 2 missing";
  store.commit(0, 2, snap);
  EXPECT_EQ(store.last_complete_generation(), 0);

  // A later incomplete generation does not advance the complete mark.
  store.commit(1, 0, snap);
  store.commit(1, 2, snap);
  EXPECT_EQ(store.last_complete_generation(), 0);
  store.commit(1, 1, snap);
  EXPECT_EQ(store.last_complete_generation(), 1);

  ASSERT_NE(store.find(0, 1), nullptr);
  EXPECT_EQ(store.find(0, 1)->regions.size(), 1U);
  EXPECT_EQ(store.find(0, 1)->total_bytes(), 16U);
  EXPECT_EQ(store.find(2, 0), nullptr);
  EXPECT_EQ(store.find(0, 99), nullptr);
}

// ---- Buddy selection --------------------------------------------------------

TEST(CkptBuddy, RingNeighbourOnASingleNode) {
  mpi::World w(ckpt_world(4, /*ppn=*/4));
  ckpt::Store store(4);
  const ckpt::CkptConfig cfg = enabled_cfg(100.0);
  w.run([&](Comm& c) {
    ckpt::Checkpointer ck(c, store, cfg);
    EXPECT_EQ(ck.buddy(), (c.rank() + 1) % 4);
  });
}

TEST(CkptBuddy, ShiftsByPpnAcrossNodes) {
  // Block placement puts ranks 0-3 on node 0 and 4-7 on node 1; shifting
  // by ppn lands every buddy copy on the other node, so losing one whole
  // node never loses both copies.
  mpi::World w(ckpt_world(8, /*ppn=*/4));
  ckpt::Store store(8);
  const ckpt::CkptConfig cfg = enabled_cfg(100.0);
  w.run([&](Comm& c) {
    ckpt::Checkpointer ck(c, store, cfg);
    EXPECT_EQ(ck.buddy(), (c.rank() + 4) % 8);
  });
}

// ---- Checkpoint epoch -------------------------------------------------------

TEST(CkptEpoch, ExplicitCheckpointCommitsReplicatedBytesAndChargesTime) {
  mpi::WorldConfig wc = ckpt_world(4, /*ppn=*/2);
  wc.enable_metrics = true;
  mpi::World w(wc);
  ckpt::Store store(4);
  const ckpt::CkptConfig cfg = enabled_cfg(100.0);

  w.run([&](Comm& c) {
    std::vector<std::byte> state(
        64, std::byte{static_cast<unsigned char>(0x40 + c.rank())});
    ckpt::Checkpointer ck(c, store, cfg);
    ck.register_region("state", state.data(), state.size());

    const simtime::usec_t t0 = c.now();
    const int gen = ck.checkpoint();
    EXPECT_EQ(gen, 0);
    EXPECT_EQ(ck.checkpoints(), 1);
    EXPECT_GT(c.now(), t0) << "checkpoint epoch must cost virtual time";
    EXPECT_GT(ck.last_cost_us(), 0.0);
  });

  EXPECT_EQ(store.last_complete_generation(), 0);
  for (int r = 0; r < 4; ++r) {
    const ckpt::Store::RankSnap* snap = store.find(0, r);
    ASSERT_NE(snap, nullptr);
    EXPECT_TRUE(snap->replicated);
    EXPECT_EQ(snap->buddy, (r + 2) % 4);  // ppn=2 -> off-node shift
    ASSERT_EQ(snap->regions.size(), 1U);
    EXPECT_EQ(snap->regions[0],
              std::vector<std::byte>(
                  64, std::byte{static_cast<unsigned char>(0x40 + r)}));
  }

  const obs::Metrics::Snapshot snap = w.engine().metrics()->snapshot();
  EXPECT_EQ(counter_total(snap, "ckpt_checkpoints"), 4U);
  EXPECT_EQ(counter_total(snap, "ckpt_bytes_replicated"), 4U * 64U);
  EXPECT_EQ(counter_total(snap, "ckpt_restores"), 0U);
}

TEST(CkptEpoch, MaybeCheckpointCalibratesOneUniformStride) {
  mpi::World w(ckpt_world(4, /*ppn=*/4));
  ckpt::Store store(4);
  const ckpt::CkptConfig cfg = enabled_cfg(50.0);
  std::mutex m;
  std::vector<int> strides;
  std::vector<int> counts;

  w.run([&](Comm& c) {
    std::vector<double> v(64, 1.0);
    std::vector<double> s(64, 0.0);
    std::uint64_t iter = 0;
    ckpt::Checkpointer ck(c, store, cfg);
    ck.register_region("iter", &iter, sizeof(iter));

    for (int i = 0; i < 1000; ++i) {
      mpi::allreduce(c,
                     mpi::ConstView{reinterpret_cast<const std::byte*>(
                                        v.data()),
                                    v.size() * sizeof(double),
                                    net::MemSpace::kHost},
                     mpi::MutView{reinterpret_cast<std::byte*>(s.data()),
                                  s.size() * sizeof(double),
                                  net::MemSpace::kHost},
                     mpi::Datatype::kDouble, mpi::Op::kSum);
      ++iter;
      (void)ck.maybe_checkpoint();
    }
    std::lock_guard<std::mutex> lk(m);
    strides.push_back(ck.stride());
    counts.push_back(ck.checkpoints());
    EXPECT_DOUBLE_EQ(ck.resolved_interval_us(), 50.0);
  });

  ASSERT_EQ(strides.size(), 4U);
  for (const int s : strides) EXPECT_EQ(s, strides.front());
  EXPECT_GE(strides.front(), 1);
  for (const int c : counts) EXPECT_EQ(c, counts.front());
  EXPECT_GE(counts.front(), 2) << "1000 iterations must recheckpoint";
  EXPECT_GE(store.last_complete_generation(), 1);
}

TEST(CkptEpoch, DalyModeResolvesAPositiveUniformInterval) {
  mpi::World w(ckpt_world(4, /*ppn=*/4));
  ckpt::Store store(4);
  ckpt::CkptConfig cfg;
  cfg.enabled = true;
  cfg.daly = true;
  cfg.mtbf_us = 1e5;
  std::mutex m;
  std::vector<double> intervals;

  w.run([&](Comm& c) {
    std::uint64_t iter = 0;
    ckpt::Checkpointer ck(c, store, cfg);
    ck.register_region("iter", &iter, sizeof(iter));
    for (int i = 0; i < 50; ++i) {
      mpi::barrier(c);
      ++iter;
      (void)ck.maybe_checkpoint();
    }
    std::lock_guard<std::mutex> lk(m);
    intervals.push_back(ck.resolved_interval_us());
  });

  ASSERT_EQ(intervals.size(), 4U);
  for (const double i : intervals) {
    EXPECT_DOUBLE_EQ(i, intervals.front());
    // tau = sqrt(2 * delta * MTBF) with a positive measured delta.
    EXPECT_GT(i, 0.0);
  }
}

// ---- Recovery ---------------------------------------------------------------

TEST(CkptRecovery, KillRestoreAdoptsBuddyCopyAndEqualizesCursors) {
  mpi::WorldConfig wc = ckpt_world(8, /*ppn=*/8);
  wc.ft.enabled = true;
  wc.fault.kills.push_back({3, 500.0});
  mpi::World w(wc);
  ckpt::Store store(8);
  const ckpt::CkptConfig cfg = enabled_cfg(60.0);
  std::atomic<int> adopters{0};
  std::atomic<int> survivors_done{0};

  w.run([&](Comm& c) {
    std::uint64_t iter = 0;
    std::vector<std::byte> state(
        128, std::byte{static_cast<unsigned char>(0x60 + c.rank())});
    ckpt::Checkpointer ck(c, store, cfg);
    ck.register_region("iter", &iter, sizeof(iter));
    ck.register_region("state", state.data(), state.size());

    std::vector<double> v(32, 1.0);
    std::vector<double> s(32, 0.0);
    const mpi::ConstView sv{reinterpret_cast<const std::byte*>(v.data()),
                            v.size() * sizeof(double), net::MemSpace::kHost};
    const mpi::MutView rv{reinterpret_cast<std::byte*>(s.data()),
                          s.size() * sizeof(double), net::MemSpace::kHost};
    try {
      for (int i = 0; i < 1 << 20; ++i) {
        mpi::allreduce(c, sv, rv, mpi::Datatype::kDouble, mpi::Op::kSum);
        ++iter;
        (void)ck.maybe_checkpoint();
      }
      ADD_FAILURE() << "kill never surfaced";
    } catch (const ft::ProcFailedError&) {
    } catch (const ft::RevokedError&) {
    }

    c.revoke();
    (void)c.agree(1u);
    c.failure_ack();
    const std::vector<int> failed = c.get_failed();
    Comm alive = c.shrink();
    ASSERT_EQ(failed, std::vector<int>{3});

    const ckpt::Checkpointer::RestoreResult rr = ck.restore(alive, failed);
    EXPECT_GE(rr.generation, 0) << "60us interval must complete a gen";
    EXPECT_GT(rr.rolled_back_us, 0.0);

    // Single node: rank 3's buddy copy lives on rank 4, which is also its
    // closest surviving successor — so rank 4 (and only rank 4) adopts.
    if (c.rank() == 4) {
      ASSERT_EQ(rr.adopted, std::vector<int>{3});
      const std::vector<std::byte>* dead_state = ck.adopted_region(3, 1);
      ASSERT_NE(dead_state, nullptr);
      EXPECT_EQ(*dead_state, std::vector<std::byte>(128, std::byte{0x63}));
      adopters.fetch_add(1);
    } else {
      EXPECT_TRUE(rr.adopted.empty());
      EXPECT_EQ(ck.adopted_region(3, 1), nullptr);
    }

    // The rollback rewound every survivor to the same committed cursor.
    const double lo =
        reduce_double(alive, static_cast<double>(iter), mpi::Op::kMin);
    const double hi =
        reduce_double(alive, static_cast<double>(iter), mpi::Op::kMax);
    EXPECT_DOUBLE_EQ(lo, hi);

    // And the world still computes: a post-restore allreduce sums to the
    // survivor count.
    mpi::allreduce(alive, sv, rv, mpi::Datatype::kDouble, mpi::Op::kSum);
    EXPECT_DOUBLE_EQ(s[0], static_cast<double>(alive.size()));
    survivors_done.fetch_add(1);
  });

  EXPECT_EQ(adopters.load(), 1);
  EXPECT_EQ(survivors_done.load(), 7);
}

TEST(CkptRecovery, DeadBuddyRaisesSnapshotUnavailableEverywhere) {
  // Ranks 3 and 4 both die; on one node rank 3's buddy copy lives on
  // rank 4, so rank 3's state is genuinely unrecoverable.  Every survivor
  // must observe the same SnapshotUnavailableError (the decision is a
  // pure function of shared inputs) before any restore traffic flows —
  // no hang, no partial restore.
  mpi::WorldConfig wc = ckpt_world(8, /*ppn=*/8);
  wc.ft.enabled = true;
  wc.fault.kills.push_back({3, 500.0});
  wc.fault.kills.push_back({4, 500.0});
  mpi::World w(wc);
  ckpt::Store store(8);
  const ckpt::CkptConfig cfg = enabled_cfg(60.0);
  std::atomic<int> raised{0};

  w.run([&](Comm& c) {
    std::uint64_t iter = 0;
    ckpt::Checkpointer ck(c, store, cfg);
    ck.register_region("iter", &iter, sizeof(iter));

    std::vector<double> v(8, 1.0);
    std::vector<double> s(8, 0.0);
    const mpi::ConstView sv{reinterpret_cast<const std::byte*>(v.data()),
                            v.size() * sizeof(double), net::MemSpace::kHost};
    const mpi::MutView rv{reinterpret_cast<std::byte*>(s.data()),
                          s.size() * sizeof(double), net::MemSpace::kHost};
    try {
      for (int i = 0; i < 1 << 20; ++i) {
        mpi::allreduce(c, sv, rv, mpi::Datatype::kDouble, mpi::Op::kSum);
        ++iter;
        (void)ck.maybe_checkpoint();
      }
    } catch (const ft::ProcFailedError&) {
    } catch (const ft::RevokedError&) {
    }

    c.revoke();
    (void)c.agree(1u);
    c.failure_ack();
    const std::vector<int> failed = c.get_failed();
    Comm alive = c.shrink();

    try {
      (void)ck.restore(alive, failed);
      ADD_FAILURE() << "restore with a dead buddy did not raise";
    } catch (const ckpt::SnapshotUnavailableError& e) {
      EXPECT_EQ(e.rank(), 3);
      EXPECT_EQ(e.buddy_rank(), 4);
      EXPECT_GE(e.generation(), 0);
      raised.fetch_add(1);
    }
  });

  EXPECT_EQ(raised.load(), 6);
}

// ---- Determinism and zero perturbation --------------------------------------

TEST(CkptDeterminism, FtResilienceTableIsByteIdenticalAcrossRuns) {
  core::SuiteConfig cfg;
  cfg.nranks = 8;
  cfg.ppn = 8;
  cfg.opts.max_size = 4096;
  cfg.opts.iterations = 4;
  cfg.ft.enabled = true;
  cfg.fault.seed = 7;
  cfg.fault.kills.push_back({3, 500.0});
  cfg.ckpt = enabled_cfg(80.0);

  const core::FtReport a =
      bench_suite::run_ft_collective(cfg, bench_suite::CollBench::kAllreduce);
  const core::FtReport b =
      bench_suite::run_ft_collective(cfg, bench_suite::CollBench::kAllreduce);

  EXPECT_EQ(a.survivors, 7);
  EXPECT_TRUE(a.ckpt_enabled);
  EXPECT_GT(a.ckpt_count, 0);
  EXPECT_GE(a.ckpt_generation, 0);
  EXPECT_GT(a.ckpt_cost_us, 0.0);
  EXPECT_GT(a.restore_cost_us, 0.0);

  const std::string table = core::ft_resilience_table(a).to_string();
  EXPECT_EQ(table, core::ft_resilience_table(b).to_string());
  EXPECT_NE(table.find("checkpoints taken"), std::string::npos);
  EXPECT_NE(table.find("restore cost"), std::string::npos);
  EXPECT_NE(table.find("recompute cost"), std::string::npos);
}

TEST(CkptDeterminism, ThreadsAndFibersProduceIdenticalTables) {
  OMBX_SKIP_IF_SANITIZED();
  core::SuiteConfig cfg;
  cfg.nranks = 8;
  cfg.ppn = 8;
  cfg.opts.max_size = 1024;
  cfg.opts.iterations = 4;
  cfg.ft.enabled = true;
  cfg.fault.seed = 11;
  cfg.fault.kills.push_back({5, 600.0});
  cfg.ckpt = enabled_cfg(70.0);

  cfg.sched = sched::Mode::kThreads;
  const core::FtReport t =
      bench_suite::run_ft_collective(cfg, bench_suite::CollBench::kAllreduce);
  cfg.sched = sched::Mode::kFibers;
  const core::FtReport f =
      bench_suite::run_ft_collective(cfg, bench_suite::CollBench::kAllreduce);

  EXPECT_EQ(core::ft_resilience_table(t).to_string(),
            core::ft_resilience_table(f).to_string());
}

TEST(CkptZeroPerturbation, DisabledConfigAddsNoRowsNoCostNoCounters) {
  // The off state is the seed state: no ckpt rows in the table, and the
  // measured latencies match a config that never heard of checkpointing.
  core::SuiteConfig cfg;
  cfg.nranks = 8;
  cfg.ppn = 8;
  cfg.opts.max_size = 4096;
  cfg.opts.iterations = 4;
  cfg.ft.enabled = true;
  cfg.fault.seed = 7;
  cfg.fault.kills.push_back({3, 500.0});

  const core::FtReport off =
      bench_suite::run_ft_collective(cfg, bench_suite::CollBench::kAllreduce);
  EXPECT_FALSE(off.ckpt_enabled);
  const std::string table = core::ft_resilience_table(off).to_string();
  EXPECT_EQ(table.find("checkpoints taken"), std::string::npos);
  EXPECT_EQ(table.find("restore cost"), std::string::npos);

  // Flipping checkpointing on must change the measured run (the epochs
  // cost virtual time) — proof the off path above is genuinely inert
  // rather than silently always-on.
  core::SuiteConfig on = cfg;
  on.ckpt = enabled_cfg(80.0);
  const core::FtReport with =
      bench_suite::run_ft_collective(on, bench_suite::CollBench::kAllreduce);
  EXPECT_GT(with.ckpt_count, 0);
  EXPECT_NE(core::ft_resilience_table(with).to_string(), table);
}

// ---- Concurrent FT + restore at scale on the fiber pool ---------------------

TEST(CkptSched, ConcurrentRecoveryWorldsAtNp64DoNotTripTheWatchdog) {
  // Campaign cells run several worlds on the shared fiber pool at once;
  // with checkpointing on, recovery adds the restore barriers to the FT
  // barrier mix.  A 1 ms watchdog poll makes any "parked fibers look like
  // a deadlock" regression near-certain at np=64 x 2 worlds.
  OMBX_SKIP_IF_SANITIZED();
  constexpr int kWorlds = 2;
  constexpr int kRanks = 64;
  std::atomic<int> recovered{0};
  std::vector<std::thread> drivers;
  drivers.reserve(kWorlds);

  for (int wi = 0; wi < kWorlds; ++wi) {
    drivers.emplace_back([&, wi] {
      mpi::WorldConfig wc = ckpt_world(kRanks, /*ppn=*/8);
      wc.sched = sched::Mode::kFibers;
      wc.watchdog_poll_ms = 1.0;
      wc.ft.enabled = true;
      wc.fault.kills.push_back({20 + wi, 400.0});
      mpi::World w(wc);
      ckpt::Store store(kRanks);
      const ckpt::CkptConfig cfg = enabled_cfg(60.0);

      w.run([&](Comm& c) {
        std::uint64_t iter = 0;
        ckpt::Checkpointer ck(c, store, cfg);
        ck.register_region("iter", &iter, sizeof(iter));

        std::vector<double> v(16, 1.0);
        std::vector<double> s(16, 0.0);
        const mpi::ConstView sv{reinterpret_cast<const std::byte*>(v.data()),
                                v.size() * sizeof(double),
                                net::MemSpace::kHost};
        const mpi::MutView rv{reinterpret_cast<std::byte*>(s.data()),
                              s.size() * sizeof(double), net::MemSpace::kHost};
        try {
          for (int i = 0; i < 1 << 20; ++i) {
            mpi::allreduce(c, sv, rv, mpi::Datatype::kDouble, mpi::Op::kSum);
            ++iter;
            (void)ck.maybe_checkpoint();
          }
        } catch (const ft::ProcFailedError&) {
        } catch (const ft::RevokedError&) {
        }

        c.revoke();
        (void)c.agree(1u);
        c.failure_ack();
        Comm alive = c.shrink();
        const ckpt::Checkpointer::RestoreResult rr =
            ck.restore(alive, c.get_failed());
        EXPECT_GE(rr.generation, 0);
        mpi::allreduce(alive, sv, rv, mpi::Datatype::kDouble, mpi::Op::kSum);
        EXPECT_DOUBLE_EQ(s[0], static_cast<double>(alive.size()));
        recovered.fetch_add(1);
      });
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(recovered.load(), kWorlds * (kRanks - 1));
}
