// Tests for one-sided communication: Put/Get/Accumulate with fence
// synchronization, multi-epoch reuse, concurrent cross-gets, and misuse.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "bench_suite/suite.hpp"
#include "mpi/error.hpp"
#include "mpi/rma.hpp"
#include "mpi/world.hpp"

using namespace ombx;
using mpi::Comm;
using mpi::ConstView;
using mpi::MutView;

namespace {

mpi::WorldConfig rma_world(int nranks) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = nranks;
  wc.ppn = std::min(nranks, wc.cluster.topo.cores_per_node());
  return wc;
}

template <typename T>
ConstView cv(const std::vector<T>& v) {
  return ConstView{reinterpret_cast<const std::byte*>(v.data()),
                   v.size() * sizeof(T)};
}
template <typename T>
MutView mv(std::vector<T>& v) {
  return MutView{reinterpret_cast<std::byte*>(v.data()),
                 v.size() * sizeof(T)};
}

}  // namespace

TEST(Rma, PutDeliversAtFence) {
  mpi::World w(rma_world(2));
  w.run([](Comm& c) {
    std::vector<std::uint8_t> window(64, 0);
    mpi::Win win(c, mv(window));
    std::vector<std::uint8_t> data(16);
    std::iota(data.begin(), data.end(), 100);
    if (c.rank() == 0) {
      win.put(cv(data), 1, 8);
    }
    win.fence();
    if (c.rank() == 1) {
      for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(window[static_cast<std::size_t>(8 + i)], 100 + i);
      }
      EXPECT_EQ(window[0], 0);  // untouched region intact
      EXPECT_EQ(window[24], 0);
    }
  });
}

TEST(Rma, GetReadsRemoteWindow) {
  mpi::World w(rma_world(2));
  w.run([](Comm& c) {
    std::vector<std::uint8_t> window(32);
    for (std::size_t i = 0; i < window.size(); ++i) {
      window[i] = static_cast<std::uint8_t>(c.rank() * 50 + i);
    }
    mpi::Win win(c, mv(window));
    std::vector<std::uint8_t> got(8, 0);
    if (c.rank() == 0) {
      win.get(mv(got), 1, 4);
    }
    win.fence();
    if (c.rank() == 0) {
      for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(i)], 50 + 4 + i);
      }
    }
  });
}

TEST(Rma, AccumulateSumsContributionsFromAllRanks) {
  constexpr int kN = 4;
  mpi::World w(rma_world(kN));
  w.run([](Comm& c) {
    std::vector<std::int64_t> window(4, 0);
    mpi::Win win(c, mv(window));
    const std::vector<std::int64_t> mine(4, c.rank() + 1);
    // Everyone accumulates into rank 0's window.
    win.accumulate(cv(mine), 0, 0, mpi::Datatype::kInt64, mpi::Op::kSum);
    win.fence();
    if (c.rank() == 0) {
      // 1+2+3+4 = 10 on top of the initial zeros.
      for (const std::int64_t v : window) EXPECT_EQ(v, 10);
    }
  });
}

TEST(Rma, MultipleEpochsReuseTheWindow) {
  mpi::World w(rma_world(2));
  w.run([](Comm& c) {
    std::vector<std::int32_t> window(1, 0);
    mpi::Win win(c, mv(window));
    for (int epoch = 1; epoch <= 5; ++epoch) {
      const std::vector<std::int32_t> v(1, epoch);
      if (c.rank() == 0) win.put(cv(v), 1, 0);
      win.fence();
      if (c.rank() == 1) {
      EXPECT_EQ(window[0], epoch);
    }
    }
  });
}

TEST(Rma, CrossGetsDoNotDeadlock) {
  // Both ranks get a rendezvous-sized block from each other in the same
  // epoch; the fence must resolve both without deadlock.
  mpi::World w(rma_world(2));
  const std::size_t big = 1 << 20;
  w.run([&](Comm& c) {
    std::vector<std::uint8_t> window(big,
                                     static_cast<std::uint8_t>(c.rank() + 7));
    mpi::Win win(c, mv(window));
    std::vector<std::uint8_t> got(big, 0);
    win.get(mv(got), 1 - c.rank(), 0);
    win.fence();
    EXPECT_EQ(got[0], static_cast<std::uint8_t>((1 - c.rank()) + 7));
    EXPECT_EQ(got[big - 1], got[0]);
  });
}

TEST(Rma, ManyPutsInOneEpoch) {
  mpi::World w(rma_world(2));
  w.run([](Comm& c) {
    std::vector<std::uint8_t> window(256, 0);
    mpi::Win win(c, mv(window));
    if (c.rank() == 0) {
      for (int i = 0; i < 16; ++i) {
        const std::vector<std::uint8_t> v(16,
                                          static_cast<std::uint8_t>(i + 1));
        win.put(cv(v), 1, static_cast<std::size_t>(i) * 16);
      }
    }
    win.fence();
    if (c.rank() == 1) {
      for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(window[static_cast<std::size_t>(i) * 16],
                  static_cast<std::uint8_t>(i + 1));
      }
    }
  });
}

TEST(Rma, FenceSynchronizesEvenWithoutOps) {
  mpi::World w(rma_world(4));
  w.run([](Comm& c) {
    std::vector<std::uint8_t> window(8, 0);
    mpi::Win win(c, mv(window));
    c.clock().advance(5.0 * c.rank());
    win.fence();
    EXPECT_GE(c.now(), 15.0);  // slowest rank gates everyone
  });
}

TEST(Rma, OutOfRangeOperationsThrow) {
  mpi::World w(rma_world(2));
  EXPECT_THROW(w.run([](Comm& c) {
                 std::vector<std::uint8_t> window(8, 0);
                 mpi::Win win(c, mv(window));
                 const std::vector<std::uint8_t> v(16, 1);
                 win.put(cv(v), 5, 0);  // no such target (every rank fails)
                 win.fence();
               }),
               mpi::Error);
}

TEST(Rma, WindowOverflowDetectedAtTarget) {
  mpi::World w(rma_world(2));
  EXPECT_THROW(w.run([](Comm& c) {
                 std::vector<std::uint8_t> window(8, 0);
                 mpi::Win win(c, mv(window));
                 const std::vector<std::uint8_t> v(16, 1);
                 win.put(cv(v), 1 - c.rank(), 4);  // 4+16 > 8
                 win.fence();
               }),
               mpi::Error);
}

TEST(Rma, RequiresRealPayloads) {
  auto cfg = rma_world(2);
  cfg.payload = mpi::PayloadMode::kSynthetic;
  mpi::World w(cfg);
  EXPECT_THROW(w.run([](Comm& c) {
                 std::vector<std::uint8_t> window(8, 0);
                 mpi::Win win(c, mv(window));
               }),
               mpi::Error);
}

TEST(RmaBench, PutLatencyRunsAndGrowsWithSize) {
  core::SuiteConfig cfg;
  cfg.nranks = 2;
  cfg.ppn = 1;
  cfg.mode = core::Mode::kNativeC;
  cfg.opts.max_size = 1 << 16;
  cfg.opts.iterations = 3;
  cfg.opts.warmup = 1;
  cfg.opts.validate = true;
  const auto rows = bench_suite::run_rma(
      cfg, bench_suite::RmaBench::kPutLatency);
  ASSERT_FALSE(rows.empty());
  EXPECT_GT(rows.back().stats.avg, rows.front().stats.avg);
}

TEST(RmaBench, GetCostsAtLeastPut) {
  core::SuiteConfig cfg;
  cfg.nranks = 2;
  cfg.ppn = 1;
  cfg.mode = core::Mode::kNativeC;
  cfg.opts.min_size = 4096;
  cfg.opts.max_size = 4096;
  cfg.opts.iterations = 3;
  cfg.opts.warmup = 1;
  const double put =
      bench_suite::run_rma(cfg, bench_suite::RmaBench::kPutLatency)
          .front()
          .stats.avg;
  const double get =
      bench_suite::run_rma(cfg, bench_suite::RmaBench::kGetLatency)
          .front()
          .stats.avg;
  // A get is a request/response round trip; it cannot beat a one-way put.
  EXPECT_GE(get, put * 0.99);
}

TEST(RmaBench, PutBandwidthSaturatesTheLink) {
  core::SuiteConfig cfg;
  cfg.nranks = 2;
  cfg.ppn = 1;
  cfg.mode = core::Mode::kNativeC;
  cfg.opts.min_size = 1 << 20;
  cfg.opts.max_size = 1 << 20;
  cfg.opts.iterations = 2;
  cfg.opts.warmup = 1;
  cfg.opts.window_size = 32;
  const auto rows =
      bench_suite::run_rma(cfg, bench_suite::RmaBench::kPutBw);
  EXPECT_GT(rows.front().stats.avg, 0.5 * 12200.0);
}
