// ULFM-style fault-tolerance tests (ombx::ft): rank-attributed failure
// detection at p2p and collective call sites, revoke interrupting blocked
// waits, deterministic shrink/renumbering, fault-tolerant agreement with
// failures mid-agreement, double-kill recovery, checker-clean strict runs
// through a shrink, the zero-perturbation pin for idle FT config, retry
// interplay with the checker, and resilience-table determinism.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bench_suite/suite.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"
#include "ft/ft.hpp"
#include "mpi/collectives.hpp"
#include "mpi/error.hpp"
#include "mpi/hierarchical.hpp"
#include "mpi/world.hpp"
#include "sched/sched.hpp"

using namespace ombx;
using mpi::Comm;
using mpi::ConstView;
using mpi::MutView;

namespace {

mpi::WorldConfig ft_world(int nranks, int ppn = 4) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = nranks;
  wc.ppn = ppn;
  wc.ft.enabled = true;
  return wc;
}

ConstView cv(const std::vector<std::byte>& v) {
  return ConstView{v.data(), v.size()};
}
MutView mv(std::vector<std::byte>& v) { return MutView{v.data(), v.size()}; }

/// Allreduce doubles until an FT error surfaces; returns the caught
/// failure's world rank (or -1 for a second-hand RevokedError).
int spin_until_failure(Comm& comm, std::vector<double>& val,
                       std::vector<double>& sum) {
  const ConstView sv{reinterpret_cast<const std::byte*>(val.data()),
                     val.size() * sizeof(double)};
  const MutView rv{reinterpret_cast<std::byte*>(sum.data()),
                   sum.size() * sizeof(double)};
  try {
    for (int i = 0; i < 1 << 20; ++i) {
      mpi::allreduce(comm, sv, rv, mpi::Datatype::kDouble, mpi::Op::kSum);
    }
  } catch (const ft::ProcFailedError& e) {
    return e.failed_rank();
  } catch (const ft::RevokedError&) {
    return -1;
  }
  ADD_FAILURE() << "kill never surfaced during the spin";
  return -2;
}

}  // namespace

// ---- Detection: p2p call sites ---------------------------------------------

TEST(FtDetection, SendToKilledRankRaisesProcFailed) {
  // The sender's clock is already past the victim's kill time, so the
  // static plan check raises at the send site with the failed rank named.
  mpi::WorldConfig wc = ft_world(4);
  wc.fault.kills.push_back({1, 100.0});
  mpi::World w(wc);
  std::atomic<bool> raised{false};

  w.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.clock().advance(200.0);
      std::vector<std::byte> buf(64, std::byte{1});
      try {
        c.send(cv(buf), 1, 7);
        ADD_FAILURE() << "send to a dead rank did not raise";
      } catch (const ft::ProcFailedError& e) {
        EXPECT_EQ(e.failed_rank(), 1);
        EXPECT_DOUBLE_EQ(e.at_time_us(), 100.0);
        raised = true;
      }
    }
    // Rank 1 exits before reaching its kill time; ranks 2-3 idle.
  });
  EXPECT_TRUE(raised.load());
}

TEST(FtDetection, BlockedRecvFromKilledRankRaisesAfterDetectTimeout) {
  mpi::WorldConfig wc = ft_world(3);
  wc.fault.kills.push_back({1, 50.0});
  mpi::World w(wc);
  std::atomic<bool> raised{false};

  w.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::byte> buf(64);
      try {
        (void)c.recv(mv(buf), 1, 7);
        ADD_FAILURE() << "recv from a dead rank did not raise";
      } catch (const ft::ProcFailedError& e) {
        EXPECT_EQ(e.failed_rank(), 1);
        // Detection is bounded: death time + configured detect timeout.
        EXPECT_GE(c.now(), 50.0 + wc.ft.detect_timeout_us);
        raised = true;
      }
    } else if (c.rank() == 1) {
      c.clock().advance(60.0);
      c.charge_flops(8.0);  // next substrate call past t=50 -> killed
      ADD_FAILURE() << "rank 1 outlived its kill time";
    }
  });
  EXPECT_TRUE(raised.load());
}

// ---- Detection: collective call sites --------------------------------------

TEST(FtDetection, CollectiveAt8RanksScopedNotGlobal) {
  // A kill mid-allreduce must not poison the world: every survivor gets a
  // rank-attributed FT error (first- or second-hand), recovers, and
  // finishes — no hang, no whole-world abort.
  mpi::WorldConfig wc = ft_world(8);
  wc.fault.kills.push_back({3, 400.0});
  mpi::World w(wc);
  std::atomic<int> survivors_done{0};
  std::atomic<int> first_hand{0};

  w.run([&](Comm& comm) {
    std::vector<double> val(128, 1.0);
    std::vector<double> sum(128, 0.0);
    const int failed = spin_until_failure(comm, val, sum);
    if (failed >= 0) {
      EXPECT_EQ(failed, 3);
      first_hand.fetch_add(1);
    }
    comm.revoke();
    comm.failure_ack();
    Comm alive = comm.shrink();
    mpi::allreduce(alive,
                   ConstView{reinterpret_cast<const std::byte*>(val.data()),
                             val.size() * sizeof(double)},
                   MutView{reinterpret_cast<std::byte*>(sum.data()),
                           sum.size() * sizeof(double)},
                   mpi::Datatype::kDouble, mpi::Op::kSum);
    EXPECT_DOUBLE_EQ(sum[0], 7.0);
    survivors_done.fetch_add(1);
  });
  EXPECT_EQ(survivors_done.load(), 7);
  EXPECT_GE(first_hand.load(), 1);  // someone detected it directly
}

// ---- Revoke ----------------------------------------------------------------

TEST(FtRevoke, InterruptsBlockedWait) {
  // Rank 0 blocks on a message rank 2 will never send; rank 2 revokes the
  // communicator instead, which must unwind rank 0 with RevokedError.
  mpi::World w(ft_world(3));
  std::atomic<bool> revoked_seen{false};

  w.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::byte> buf(64);
      try {
        (void)c.recv(mv(buf), 2, 5);
        ADD_FAILURE() << "recv on a revoked comm did not raise";
      } catch (const ft::RevokedError&) {
        revoked_seen = true;
      }
    } else if (c.rank() == 2) {
      c.clock().advance(40.0);
      c.revoke();
    }
  });
  EXPECT_TRUE(revoked_seen.load());
}

TEST(FtRevoke, QueuedMatchBeatsRevocation) {
  // Match-wins rule: a message already queued for the receiver is
  // delivered even if the sender revokes immediately afterwards — the
  // send happens-before the sender's own exit mark.
  mpi::World w(ft_world(2, /*ppn=*/2));
  std::atomic<bool> delivered{false};

  w.run([&](Comm& c) {
    std::vector<std::byte> buf(16, std::byte{0x7e});
    if (c.rank() == 1) {
      c.send(cv(buf), 0, 3);
      c.revoke();
    } else {
      std::vector<std::byte> got(16);
      (void)c.recv(mv(got), 1, 3);  // must NOT raise RevokedError
      EXPECT_EQ(std::memcmp(got.data(), buf.data(), got.size()), 0);
      delivered = true;
    }
  });
  EXPECT_TRUE(delivered.load());
}

TEST(FtRevoke, RendezvousSendPostedAfterRevokeRaisesInsteadOfHanging) {
  // Regression: a peer's revoke wake-sweep runs before the sender
  // registers its rendezvous sync cell, so no future sweep can reach it.
  // The post-registration FT handshake in post_send must interrupt the
  // send; previously the sender parked on the cell forever and only the
  // watchdog (flakily, host-timing dependent) reported the hang.
  mpi::World w(ft_world(2, /*ppn=*/2));
  std::atomic<bool> revoked{false};
  std::atomic<bool> raised{false};

  w.run([&](Comm& c) {
    if (c.rank() == 1) {
      c.revoke();
      revoked = true;
      return;
    }
    // Host-level spin in a rank body: must yield the *fiber* (a plain
    // thread yield would hog the worker and starve rank 1 on a
    // one-worker pool).
    while (!revoked.load()) {
      sched::maybe_yield();
      std::this_thread::yield();
    }
    // Large payload: the blocking send takes the zero-copy rendezvous
    // path and waits on its sync cell for a claim that can never come.
    std::vector<std::byte> big(1 << 20, std::byte{1});
    try {
      c.send(cv(big), 1, 7);
      ADD_FAILURE() << "rendezvous send to an exited peer did not raise";
    } catch (const ft::RevokedError&) {
      raised = true;
    }
  });
  EXPECT_TRUE(raised.load());
}

// ---- Shrink ----------------------------------------------------------------

TEST(FtShrink, RebuildsRenumberedCommThatFullyWorks) {
  mpi::WorldConfig wc = ft_world(8);
  wc.fault.kills.push_back({5, 300.0});
  mpi::World w(wc);
  std::atomic<int> done{0};

  w.run([&](Comm& comm) {
    std::vector<double> val(64, 1.0);
    std::vector<double> sum(64, 0.0);
    (void)spin_until_failure(comm, val, sum);
    comm.revoke();
    // agree() completes only once every member arrived or died, so the
    // failure snapshot taken after it is complete and deterministic —
    // ack'ing before the barrier would race with the victim's thread.
    (void)comm.agree(1u);
    comm.failure_ack();
    const std::vector<int> failed = comm.get_failed();
    EXPECT_EQ(failed, std::vector<int>{5});

    Comm alive = comm.shrink();
    ASSERT_EQ(alive.size(), 7);
    // Deterministic renumbering: survivors keep world order, dense ranks.
    const std::array<int, 7> expect_world{0, 1, 2, 3, 4, 6, 7};
    EXPECT_EQ(alive.world_rank(alive.rank()),
              expect_world[static_cast<std::size_t>(alive.rank())]);

    // The fresh context supports p2p...
    std::vector<std::byte> buf(32, std::byte{0x2a});
    if (alive.rank() == 0) {
      alive.send(cv(buf), alive.size() - 1, 11);
    } else if (alive.rank() == alive.size() - 1) {
      std::vector<std::byte> got(32);
      (void)alive.recv(mv(got), 0, 11);
      EXPECT_EQ(std::memcmp(got.data(), buf.data(), got.size()), 0);
    }
    // ...flat collectives...
    mpi::allreduce(alive,
                   ConstView{reinterpret_cast<const std::byte*>(val.data()),
                             val.size() * sizeof(double)},
                   MutView{reinterpret_cast<std::byte*>(sum.data()),
                           sum.size() * sizeof(double)},
                   mpi::Datatype::kDouble, mpi::Op::kSum);
    EXPECT_DOUBLE_EQ(sum[0], 7.0);
    // ...and the topology-aware two-level path (layout rebuild).
    mpi::HierarchicalComm hc(alive);
    hc.barrier();
    hc.allreduce(ConstView{reinterpret_cast<const std::byte*>(val.data()),
                           val.size() * sizeof(double)},
                 MutView{reinterpret_cast<std::byte*>(sum.data()),
                         sum.size() * sizeof(double)},
                 mpi::Datatype::kDouble, mpi::Op::kSum);
    EXPECT_DOUBLE_EQ(sum[0], 7.0);
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 7);
}

TEST(FtShrink, DoubleKillRecoversTwice) {
  mpi::WorldConfig wc = ft_world(8);
  wc.fault.kills.push_back({3, 200.0});
  wc.fault.kills.push_back({6, 4000.0});
  mpi::World w(wc);
  std::atomic<int> done{0};

  w.run([&](Comm& comm) {
    std::vector<double> val(64, 1.0);
    std::vector<double> sum(64, 0.0);

    (void)spin_until_failure(comm, val, sum);
    comm.revoke();
    comm.failure_ack();
    Comm seven = comm.shrink();
    ASSERT_EQ(seven.size(), 7);

    (void)spin_until_failure(seven, val, sum);
    seven.revoke();
    Comm six = seven.shrink();
    ASSERT_EQ(six.size(), 6);
    // Failures are per-communicator: query the comm rank 6 belonged to.
    // The completed shrink barrier guarantees the set is complete here.
    seven.failure_ack();
    const std::vector<int> failed = seven.get_failed();
    EXPECT_EQ(failed, std::vector<int>{6});

    mpi::allreduce(six,
                   ConstView{reinterpret_cast<const std::byte*>(val.data()),
                             val.size() * sizeof(double)},
                   MutView{reinterpret_cast<std::byte*>(sum.data()),
                           sum.size() * sizeof(double)},
                   mpi::Datatype::kDouble, mpi::Op::kSum);
    EXPECT_DOUBLE_EQ(sum[0], 6.0);
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 6);
}

// ---- Agreement -------------------------------------------------------------

TEST(FtAgree, ToleratesFailureMidAgreement) {
  // Rank 2 dies before arriving at the agreement; the survivors' agree()
  // must still complete (arrived-or-dead), AND their contributions, and
  // flag the unacknowledged failure.
  mpi::WorldConfig wc = ft_world(4);
  wc.fault.kills.push_back({2, 50.0});
  mpi::World w(wc);
  std::atomic<int> done{0};

  w.run([&](Comm& c) {
    if (c.rank() == 2) {
      c.clock().advance(60.0);
      c.charge_flops(8.0);  // killed here, never reaches agree()
      ADD_FAILURE() << "rank 2 outlived its kill time";
      return;
    }
    const Comm::AgreeOutcome out = c.agree(c.rank() == 0 ? 0b11u : 0b01u);
    EXPECT_EQ(out.bits, 0b01u);          // AND over the survivors
    EXPECT_TRUE(out.new_failures);       // rank 2's death was never acked
    const std::vector<int> failed = c.get_failed();
    ASSERT_EQ(failed.size(), 1u);
    EXPECT_EQ(failed[0], 2);
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 3);
}

TEST(FtAgree, AckedFailureIsNotNew) {
  mpi::WorldConfig wc = ft_world(4);
  wc.fault.kills.push_back({1, 50.0});
  mpi::World w(wc);

  w.run([&](Comm& c) {
    if (c.rank() == 1) {
      c.clock().advance(60.0);
      c.charge_flops(8.0);
      return;
    }
    // First agreement observes the failure; after failure_ack a second
    // agreement reports nothing new (ULFM MPIX_Comm_agree semantics).
    const Comm::AgreeOutcome first = c.agree(1u);
    EXPECT_TRUE(first.new_failures);
    c.failure_ack();
    const Comm::AgreeOutcome second = c.agree(1u);
    EXPECT_FALSE(second.new_failures);
  });
}

// ---- Checker interplay -----------------------------------------------------

TEST(FtChecker, StrictCheckedRunStaysCleanThroughShrink) {
  // Recovery abandons collective epochs and in-flight sends on the old
  // context; the checker must excuse that residue, so a strict run
  // through kill -> revoke -> shrink finishes with zero violations.
  mpi::WorldConfig wc = ft_world(8);
  wc.fault.kills.push_back({3, 400.0});
  wc.check.enabled = true;
  wc.check.mode = check::Mode::kStrict;
  mpi::World w(wc);

  EXPECT_NO_THROW(w.run([&](Comm& comm) {
    std::vector<double> val(64, 1.0);
    std::vector<double> sum(64, 0.0);
    (void)spin_until_failure(comm, val, sum);
    comm.revoke();
    comm.failure_ack();
    Comm alive = comm.shrink();
    mpi::barrier(alive);
  }));
  ASSERT_NE(w.engine().checker(), nullptr);
  EXPECT_TRUE(w.engine().checker()->empty());
}

TEST(RetryChecker, RetriedAttemptStartsFromCleanCheckerState) {
  // An aborted first attempt leaves unmatched sends and an open collective
  // epoch behind; the retry must reset that state, or attempt 2 would
  // fail strict checking with phantom violations.
  mpi::WorldConfig wc = ft_world(4);
  wc.ft.enabled = false;
  wc.check.enabled = true;
  wc.check.mode = check::Mode::kStrict;
  mpi::World w(wc);
  std::atomic<bool> fail_once{true};

  const core::RunOutcome out = core::run_with_retry(
      w,
      [&](Comm& c) {
        std::vector<double> val(64, 1.0);
        std::vector<double> sum(64, 0.0);
        const ConstView sv{reinterpret_cast<const std::byte*>(val.data()),
                           val.size() * sizeof(double)};
        const MutView rv{reinterpret_cast<std::byte*>(sum.data()),
                         sum.size() * sizeof(double)};
        mpi::allreduce(c, sv, rv, mpi::Datatype::kDouble, mpi::Op::kSum);
        if (c.rank() == 2 && fail_once.exchange(false)) {
          // Leave peers mid-collective and an unmatched send in rank 3's
          // mailbox, then die: worst-case residue for the next attempt.
          std::vector<std::byte> stray(32, std::byte{0x11});
          c.send(cv(stray), 3, 13);
          throw std::runtime_error("injected failure on attempt 1");
        }
        mpi::allreduce(c, sv, rv, mpi::Datatype::kDouble, mpi::Op::kSum);
        mpi::barrier(c);
      },
      core::RetryPolicy{.max_attempts = 3, .backoff_ms = 0.0});

  EXPECT_TRUE(out.succeeded);
  EXPECT_EQ(out.attempts, 2);
  ASSERT_NE(w.engine().checker(), nullptr);
  EXPECT_TRUE(w.engine().checker()->empty());
}

// ---- Zero perturbation -----------------------------------------------------

TEST(FtZeroPerturbation, IdleFtModeLeavesTimingIdentical) {
  // FT enabled with an empty fault plan must be timing-invisible: the
  // whole detection machinery only acts when something actually fails.
  const auto finish_times = [](bool ft_enabled) {
    mpi::WorldConfig wc = ft_world(4);
    wc.ft.enabled = ft_enabled;
    mpi::World w(wc);
    w.run([&](Comm& c) {
      std::vector<double> val(128, 1.0);
      std::vector<double> sum(128, 0.0);
      std::vector<std::byte> buf(64);
      for (int i = 0; i < 25; ++i) {
        mpi::allreduce(c,
                       ConstView{
                           reinterpret_cast<const std::byte*>(val.data()),
                           val.size() * sizeof(double)},
                       MutView{reinterpret_cast<std::byte*>(sum.data()),
                               sum.size() * sizeof(double)},
                       mpi::Datatype::kDouble, mpi::Op::kSum);
        if (c.rank() == 0) {
          c.send(cv(buf), 1, 4);
        } else if (c.rank() == 1) {
          (void)c.recv(mv(buf), 0, 4);
        }
      }
    });
    std::vector<double> t;
    for (int r = 0; r < 4; ++r) t.push_back(w.finish_time(r));
    return t;
  };
  EXPECT_EQ(finish_times(false), finish_times(true));
}

// ---- Resilient benchmark mode ----------------------------------------------

TEST(FtBench, ResilienceTableIsByteIdenticalAcrossRuns) {
  core::SuiteConfig cfg;
  cfg.nranks = 8;
  cfg.ppn = 8;
  cfg.opts.max_size = 4096;
  cfg.opts.iterations = 4;
  cfg.ft.enabled = true;
  cfg.fault.seed = 7;
  cfg.fault.kills.push_back({3, 500.0});

  const core::FtReport a =
      bench_suite::run_ft_collective(cfg, bench_suite::CollBench::kAllreduce);
  const core::FtReport b =
      bench_suite::run_ft_collective(cfg, bench_suite::CollBench::kAllreduce);

  EXPECT_EQ(a.survivors, 7);
  EXPECT_EQ(a.failed, std::vector<int>{3});
  EXPECT_GT(a.detect_latency_us, 0.0);
  EXPECT_GT(a.healthy_latency_us, 0.0);
  EXPECT_GT(a.recovered_latency_us, 0.0);
  EXPECT_EQ(core::ft_resilience_table(a).to_string(),
            core::ft_resilience_table(b).to_string());
}
