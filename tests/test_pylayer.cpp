// Tests for the binding-overhead model: cost presets, the pickle codec,
// and PyComm's charging behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "buffers/buffer.hpp"
#include "mpi/error.hpp"
#include "mpi/world.hpp"
#include "pylayer/costs.hpp"
#include "pylayer/pickle.hpp"
#include "pylayer/pycomm.hpp"

using namespace ombx;
using buffers::BufferKind;
using pylayer::PyCosts;

namespace {

mpi::WorldConfig pair_world() {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = 2;
  wc.ppn = 2;
  return wc;
}

}  // namespace

// ---- PyCosts ------------------------------------------------------------------

TEST(PyCosts, PresetsExistForEveryCluster) {
  for (const char* name : {"frontera", "stampede2", "ri2", "ri2-gpu"}) {
    EXPECT_NO_THROW((void)PyCosts::for_cluster(name)) << name;
  }
  EXPECT_THROW((void)PyCosts::for_cluster("summit"), std::invalid_argument);
}

TEST(PyCosts, NumbaExportIsRoughlyTwiceCupy) {
  const PyCosts p = PyCosts::ri2_gpu();
  EXPECT_GT(p.export_cost(BufferKind::kNumba),
            1.6 * p.export_cost(BufferKind::kCupy));
  EXPECT_NEAR(p.export_cost(BufferKind::kCupy),
              p.export_cost(BufferKind::kPycuda), 0.2);
}

TEST(PyCosts, HostExportIsCheap) {
  const PyCosts p = PyCosts::frontera();
  EXPECT_LT(p.export_cost(BufferKind::kNumpy), 0.5);
  EXPECT_LT(p.dispatch_cost(BufferKind::kNumpy),
            p.dispatch_cost(BufferKind::kCupy));
}

TEST(PyCosts, CollCostGrowsWithSize) {
  const PyCosts p = PyCosts::frontera();
  const double small =
      p.coll_cost(pylayer::CollKind::kAllreduce, BufferKind::kNumpy, 8);
  const double large = p.coll_cost(pylayer::CollKind::kAllreduce,
                                   BufferKind::kNumpy, 1 << 20);
  EXPECT_GT(large, small);
  EXPECT_NEAR(small, 0.93, 0.05);  // the paper's small-size average
}

TEST(PyCosts, GpuCollectiveOrdering) {
  const PyCosts p = PyCosts::ri2_gpu();
  using pylayer::CollKind;
  // Paper: CuPy ~ PyCUDA < Numba for both collectives.
  EXPECT_LT(p.coll_cost(CollKind::kAllreduce, BufferKind::kPycuda, 0),
            p.coll_cost(CollKind::kAllreduce, BufferKind::kNumba, 0));
  EXPECT_LT(p.coll_cost(CollKind::kAllgather, BufferKind::kCupy, 0),
            p.coll_cost(CollKind::kAllgather, BufferKind::kNumba, 0));
}

// ---- Pickle codec ----------------------------------------------------------------

TEST(Pickle, RoundTripSmall) {
  std::vector<std::byte> payload(100);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i);
  }
  const auto s = pylayer::encode(
      mpi::ConstView{payload.data(), payload.size()}, mpi::Datatype::kByte);
  EXPECT_EQ(s.bytes.size(), s.logical_bytes);
  EXPECT_EQ(s.payload_bytes, payload.size());

  std::vector<std::byte> out(payload.size());
  const std::size_t n = pylayer::decode(
      s.bytes, s.logical_bytes, mpi::MutView{out.data(), out.size()},
      mpi::Datatype::kByte);
  EXPECT_EQ(n, payload.size());
  EXPECT_EQ(out, payload);
}

TEST(Pickle, RoundTripEveryFrameWidth) {
  for (const std::size_t n : {1UL, 255UL, 256UL, 70000UL}) {
    std::vector<std::byte> payload(n, std::byte{0x5A});
    const auto s =
        pylayer::encode(mpi::ConstView{payload.data(), n},
                        mpi::Datatype::kFloat);
    std::vector<std::byte> out(n);
    EXPECT_EQ(pylayer::decode(s.bytes, s.logical_bytes,
                              mpi::MutView{out.data(), n},
                              mpi::Datatype::kFloat),
              n);
    EXPECT_EQ(out, payload);
  }
}

TEST(Pickle, EncodedSizeIsExact) {
  for (const std::size_t n : {0UL, 1UL, 255UL, 256UL, 65536UL}) {
    // Keep data() non-null even for n == 0 (a null pointer means
    // "synthetic" and legitimately produces an empty stream).
    std::vector<std::byte> payload(std::max<std::size_t>(n, 1));
    const auto s = pylayer::encode(mpi::ConstView{payload.data(), n},
                                   mpi::Datatype::kByte);
    EXPECT_EQ(s.logical_bytes, pylayer::encoded_size(n, mpi::Datatype::kByte));
    EXPECT_EQ(s.bytes.size(), s.logical_bytes);
  }
}

TEST(Pickle, SyntheticStreamRoundTripsLengthOnly) {
  const auto s = pylayer::encode(mpi::ConstView{nullptr, 5000},
                                 mpi::Datatype::kByte);
  EXPECT_TRUE(s.bytes.empty());
  EXPECT_EQ(s.logical_bytes, pylayer::encoded_size(5000, mpi::Datatype::kByte));
  const std::size_t n = pylayer::decode({}, s.logical_bytes,
                                        mpi::MutView{nullptr, 5000},
                                        mpi::Datatype::kByte);
  EXPECT_EQ(n, 5000U);
}

TEST(Pickle, RejectsCorruptStreams) {
  std::vector<std::byte> payload(32);
  auto s = pylayer::encode(mpi::ConstView{payload.data(), payload.size()},
                           mpi::Datatype::kByte);
  std::vector<std::byte> out(payload.size());

  auto broken = s.bytes;
  broken[0] = std::byte{0x00};  // not PROTO
  EXPECT_THROW(pylayer::decode(broken, broken.size(),
                               mpi::MutView{out.data(), out.size()},
                               mpi::Datatype::kByte),
               mpi::Error);

  auto truncated = s.bytes;
  truncated.pop_back();  // lost STOP
  EXPECT_THROW(pylayer::decode(truncated, truncated.size(),
                               mpi::MutView{out.data(), out.size()},
                               mpi::Datatype::kByte),
               mpi::Error);

  // Wrong datatype tag.
  EXPECT_THROW(pylayer::decode(s.bytes, s.bytes.size(),
                               mpi::MutView{out.data(), out.size()},
                               mpi::Datatype::kDouble),
               mpi::Error);
}

// ---- PyComm charging ----------------------------------------------------------------

TEST(PyComm, DisabledModeIsTransparent) {
  mpi::World w(pair_world());
  w.run([](mpi::Comm& c) {
    pylayer::PyComm py(c, PyCosts::frontera(), /*overhead_enabled=*/false);
    buffers::NumpyBuffer buf(256, false);
    const double t0 = c.now();
    if (c.rank() == 0) {
      py.Send(buf, 256, 1, 1);
    } else {
      (void)py.Recv(buf, 256, 0, 1);
    }
    // Rank 0's eager shm send time must equal the raw link cost exactly.
    if (c.rank() == 0) {
      const double raw = c.net().transfer_us(0, 1, 256, net::MemSpace::kHost);
      EXPECT_DOUBLE_EQ(c.now() - t0, raw);
    }
  });
}

TEST(PyComm, EnabledModeChargesBindingOverhead) {
  mpi::World w(pair_world());
  w.run([](mpi::Comm& c) {
    const PyCosts costs = PyCosts::frontera();
    pylayer::PyComm py(c, costs, true);
    buffers::NumpyBuffer buf(256, false);
    const double t0 = c.now();
    if (c.rank() == 0) {
      py.Send(buf, 256, 1, 1);
      const double raw = c.net().transfer_us(0, 1, 256, net::MemSpace::kHost);
      const double overhead = (c.now() - t0) - raw;
      EXPECT_NEAR(overhead,
                  costs.dispatch_us + costs.export_us +
                      256 * costs.per_byte_us,
                  1e-9);
    } else {
      (void)py.Recv(buf, 256, 0, 1);
    }
  });
}

TEST(PyComm, PicklePathCostsMoreThanDirect) {
  const auto run_mode = [](bool pickle) {
    mpi::World w(pair_world());
    double t = 0.0;
    w.run([&](mpi::Comm& c) {
      pylayer::PyComm py(c, PyCosts::frontera(), true);
      buffers::NumpyBuffer buf(1 << 16, false);
      for (int i = 0; i < 4; ++i) {
        if (c.rank() == 0) {
          if (pickle) {
            py.send_pickled(buf, 1 << 16, 1, 1);
            (void)py.recv_pickled(buf, 1, 1);
          } else {
            py.Send(buf, 1 << 16, 1, 1);
            (void)py.Recv(buf, 1 << 16, 1, 1);
          }
        } else {
          if (pickle) {
            (void)py.recv_pickled(buf, 0, 1);
            py.send_pickled(buf, 1 << 16, 0, 1);
          } else {
            (void)py.Recv(buf, 1 << 16, 0, 1);
            py.Send(buf, 1 << 16, 0, 1);
          }
        }
      }
      if (c.rank() == 0) t = c.now();
    });
    return t;
  };
  EXPECT_GT(run_mode(true), run_mode(false));
}

TEST(PyComm, PicklePayloadSurvivesTheWire) {
  mpi::World w(pair_world());
  w.run([](mpi::Comm& c) {
    pylayer::PyComm py(c, PyCosts::frontera(), true);
    buffers::NumpyBuffer buf(512, false);
    if (c.rank() == 0) {
      buf.fill(0x77);
      py.send_pickled(buf, 512, 1, 9);
    } else {
      const mpi::Status st = py.recv_pickled(buf, 0, 9);
      EXPECT_EQ(st.bytes, 512U);
      EXPECT_TRUE(buf.verify(0x77, 512));
    }
  });
}

TEST(PyComm, CollectiveChargesAppearOnEveryRank) {
  mpi::WorldConfig wc = pair_world();
  wc.nranks = 4;
  wc.ppn = 4;
  mpi::World w_py(wc);
  mpi::World w_c(wc);
  std::vector<double> t_py(4);
  std::vector<double> t_c(4);

  const auto program = [&](bool enabled, std::vector<double>& out) {
    return [&out, enabled](mpi::Comm& c) {
      pylayer::PyComm py(c, PyCosts::frontera(), enabled);
      buffers::NumpyBuffer s(1024, false);
      buffers::NumpyBuffer r(1024, false);
      py.Allreduce(s, r, 1024, mpi::Datatype::kFloat, mpi::Op::kSum);
      out[static_cast<std::size_t>(c.rank())] = c.now();
    };
  };
  w_py.run(program(true, t_py));
  w_c.run(program(false, t_c));
  for (int r = 0; r < 4; ++r) {
    EXPECT_GT(t_py[static_cast<std::size_t>(r)],
              t_c[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
}
