// Transport-internals tests for the binned mailbox and the payload pool.
//
// The heart of this file is a property test: the production Mailbox (per-
// (context, src, tag) bins + flat hash + global sequence numbers) is run
// side by side with a deliberately naive reference mailbox (one deque,
// linear scan — the semantics the old implementation had) over randomized
// streams of enqueues, exact receives, wildcard receives (any-source,
// any-tag, and both), and probes.  Every operation must observe the same
// message in both structures, which pins the binned design to MPI arrival
// order exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <optional>
#include <random>
#include <thread>
#include <vector>

#include "explore/explore.hpp"
#include "ft/ft.hpp"
#include "mpi/mailbox.hpp"
#include "mpi/message.hpp"
#include "mpi/payload_pool.hpp"
#include "mpi/world.hpp"

using namespace ombx;
using mpi::kAnySource;
using mpi::kAnyTag;
using mpi::Mailbox;
using mpi::Message;
using mpi::PayloadPool;
using mpi::PooledPayload;

namespace {

/// The old mailbox semantics, kept as executable specification: one FIFO
/// of everything, matched by scanning from the front.
class ReferenceMailbox {
 public:
  void enqueue(Message&& msg) { q_.push_back(std::move(msg)); }

  std::optional<Message> try_dequeue_match(int ctx, int src, int tag) {
    for (auto it = q_.begin(); it != q_.end(); ++it) {
      if (it->matches(ctx, src, tag)) {
        Message msg = std::move(*it);
        q_.erase(it);
        return msg;
      }
    }
    return std::nullopt;
  }

  std::optional<mpi::Status> try_probe(int ctx, int src, int tag) const {
    for (const Message& m : q_) {
      if (m.matches(ctx, src, tag)) {
        return mpi::Status{.source = m.src, .tag = m.tag, .bytes = m.bytes};
      }
    }
    return std::nullopt;
  }

  [[nodiscard]] std::size_t size() const { return q_.size(); }

 private:
  std::deque<Message> q_;
};

Message make_msg(int ctx, int src, int tag, std::size_t id) {
  Message m;
  m.context = ctx;
  m.src = src;
  m.tag = tag;
  m.src_world = src;
  m.bytes = id;  // unique id so both structures must yield the SAME message
  return m;
}

}  // namespace

// ---- Matching property test -------------------------------------------------

TEST(MailboxMatching, BinnedMatchesReferenceOnRandomizedStreams) {
  constexpr int kContexts = 3;
  constexpr int kSources = 6;
  constexpr int kTags = 5;
  constexpr int kOpsPerSeed = 6000;

  for (std::uint32_t seed : {1u, 7u, 42u, 1234u, 99991u}) {
    std::mt19937 rng(seed);
    Mailbox box(/*capacity=*/1 << 20);  // never capacity-block in this test
    ReferenceMailbox ref;
    std::size_t next_id = 1;

    auto rand_pattern = [&](int& ctx, int& src, int& tag) {
      ctx = static_cast<int>(rng() % kContexts);
      // Mix all four receive shapes: exact, any-source, any-tag, both.
      src = (rng() % 4 == 0) ? kAnySource : static_cast<int>(rng() % kSources);
      tag = (rng() % 4 == 0) ? kAnyTag : static_cast<int>(rng() % kTags);
    };

    for (int op = 0; op < kOpsPerSeed; ++op) {
      const unsigned kind = rng() % 8;
      if (kind < 4 || ref.size() == 0) {
        // Enqueue (biased so queues stay deep enough to be interesting).
        const int ctx = static_cast<int>(rng() % kContexts);
        const int src = static_cast<int>(rng() % kSources);
        const int tag = static_cast<int>(rng() % kTags);
        box.enqueue(make_msg(ctx, src, tag, next_id));
        ref.enqueue(make_msg(ctx, src, tag, next_id));
        ++next_id;
      } else if (kind < 7) {
        int ctx, src, tag;
        rand_pattern(ctx, src, tag);
        std::optional<Message> got = box.try_dequeue_match(ctx, src, tag);
        std::optional<Message> want = ref.try_dequeue_match(ctx, src, tag);
        ASSERT_EQ(got.has_value(), want.has_value())
            << "seed=" << seed << " op=" << op << " recv(" << ctx << ","
            << src << "," << tag << ")";
        if (got) {
          EXPECT_EQ(got->bytes, want->bytes)
              << "seed=" << seed << " op=" << op << ": binned mailbox "
              << "dequeued a different message than arrival order dictates";
          EXPECT_EQ(got->src, want->src);
          EXPECT_EQ(got->tag, want->tag);
        }
      } else {
        int ctx, src, tag;
        rand_pattern(ctx, src, tag);
        std::optional<mpi::Status> got = box.try_probe(ctx, src, tag);
        std::optional<mpi::Status> want = ref.try_probe(ctx, src, tag);
        ASSERT_EQ(got.has_value(), want.has_value())
            << "seed=" << seed << " op=" << op;
        if (got) {
          EXPECT_EQ(got->bytes, want->bytes) << "seed=" << seed;
          EXPECT_EQ(got->source, want->source);
          EXPECT_EQ(got->tag, want->tag);
        }
      }
      ASSERT_EQ(box.size(), ref.size()) << "seed=" << seed << " op=" << op;
    }

    // Drain with pure wildcards: must replay global arrival order exactly.
    std::size_t last = 0;
    std::size_t drained_box = 0;
    while (auto got = box.try_dequeue_match(0, kAnySource, kAnyTag)) {
      auto want = ref.try_dequeue_match(0, kAnySource, kAnyTag);
      ASSERT_TRUE(want.has_value());
      EXPECT_EQ(got->bytes, want->bytes);
      EXPECT_GT(got->bytes, last) << "wildcard drain out of arrival order";
      last = got->bytes;
      ++drained_box;
    }
    EXPECT_FALSE(ref.try_dequeue_match(0, kAnySource, kAnyTag).has_value());
    (void)drained_box;
  }
}

TEST(MailboxMatching, ResetDrainsEveryBin) {
  Mailbox box(1024);
  for (int tag = 0; tag < 32; ++tag) {
    for (int i = 0; i < 4; ++i) {
      box.enqueue(make_msg(/*ctx=*/0, /*src=*/tag % 3, tag, 1));
    }
  }
  EXPECT_EQ(box.size(), 128u);
  box.reset();
  EXPECT_EQ(box.size(), 0u);
  EXPECT_FALSE(box.try_probe(0, kAnySource, kAnyTag).has_value());
  // And the box is usable again, with sequence numbers restarted.
  box.enqueue(make_msg(0, 1, 2, 77));
  auto got = box.try_dequeue_match(0, kAnySource, kAnyTag);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->bytes, 77u);
}

// ---- Scheduling-oracle properties -------------------------------------------

TEST(MailboxOracle, RecordedCandidateSetsContainTheMinSeqChoice) {
  // Property: with an oracle attached (but no pins), every committed
  // wildcard decision records a seq-sorted candidate set whose head IS
  // the chosen (src, tag) — the binned mailbox's min-seq default — and
  // matching behavior is byte-identical to the reference mailbox.
  constexpr int kSources = 5;
  constexpr int kTags = 4;
  explore::ScheduleOracle oracle(1);
  Mailbox box(/*capacity=*/1 << 20, nullptr, /*owner_rank=*/0);
  box.set_oracle(&oracle);
  ReferenceMailbox ref;
  std::mt19937 rng(777);
  std::size_t next_id = 1;
  std::size_t decisions_before = 0;

  for (int op = 0; op < 4000; ++op) {
    const unsigned kind = rng() % 8;
    if (kind < 4 || ref.size() == 0) {
      const int src = static_cast<int>(rng() % kSources);
      const int tag = static_cast<int>(rng() % kTags);
      box.enqueue(make_msg(0, src, tag, next_id));
      ref.enqueue(make_msg(0, src, tag, next_id));
      ++next_id;
    } else {
      const bool wild_src = rng() % 2 == 0;
      const bool wild_tag = !wild_src || rng() % 2 == 0;
      const int src =
          wild_src ? kAnySource : static_cast<int>(rng() % kSources);
      const int tag = wild_tag ? kAnyTag : static_cast<int>(rng() % kTags);
      std::optional<Message> got = box.try_dequeue_match(0, src, tag);
      std::optional<Message> want = ref.try_dequeue_match(0, src, tag);
      ASSERT_EQ(got.has_value(), want.has_value()) << "op=" << op;
      if (!got) continue;
      EXPECT_EQ(got->bytes, want->bytes) << "op=" << op;

      if (src != kAnySource && tag != kAnyTag) {
        // Exact receives are not decisions: no index consumed.
        EXPECT_EQ(oracle.decision_count(0), decisions_before);
        continue;
      }
      ASSERT_EQ(oracle.decision_count(0), decisions_before + 1);
      decisions_before = oracle.decision_count(0);
      const std::vector<explore::Decision> log = oracle.log();
      const explore::Decision& d = log.back();
      EXPECT_EQ(d.kind, explore::DecisionKind::kWildcard);
      EXPECT_EQ(d.rank, 0);
      EXPECT_EQ(d.src, got->src);
      EXPECT_EQ(d.tag, got->tag);
      EXPECT_FALSE(d.forced);
      EXPECT_FALSE(d.divergent);
      ASSERT_FALSE(d.candidates.empty());
      // Candidates are seq-ascending and the head is the chosen bin.
      for (std::size_t i = 1; i < d.candidates.size(); ++i) {
        EXPECT_LT(d.candidates[i - 1].seq, d.candidates[i].seq);
      }
      EXPECT_EQ(d.candidates.front().src, got->src);
      EXPECT_EQ(d.candidates.front().tag, got->tag);
    }
  }
  EXPECT_FALSE(oracle.diverged());
}

TEST(MailboxOracle, ForcingEachAlternatePreservesBinFifoOrder) {
  // Record the candidate set at one wildcard decision, then force each
  // alternate in turn: the forced match must take the head of exactly
  // that (src, tag) bin (what an exact receive on the key would get from
  // the reference mailbox), and the rest of the stream must still drain
  // in arrival order.
  struct E {
    int src, tag;
    std::size_t id;
  };
  const std::vector<E> scene = {{0, 1, 1}, {1, 1, 2}, {0, 2, 3},
                                {1, 1, 4}, {2, 1, 5}, {0, 1, 6}};

  explore::ScheduleOracle recorder(1);
  {
    Mailbox box(1 << 20, nullptr, 0);
    box.set_oracle(&recorder);
    for (const E& e : scene) box.enqueue(make_msg(0, e.src, e.tag, e.id));
    auto got = box.try_dequeue_match(0, kAnySource, kAnyTag);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->bytes, 1u);  // min-seq default
  }
  const std::vector<explore::Decision> log = recorder.log();
  ASSERT_EQ(log.size(), 1u);
  ASSERT_EQ(log.front().candidates.size(), 4u);  // keys (0,1) (1,1) (0,2) (2,1)

  for (const explore::Candidate& alt : log.front().candidates) {
    explore::ScheduleOracle oracle(1);
    explore::Schedule s;
    s.pins.push_back(explore::Pin{0, 0, alt.src, alt.tag});
    oracle.arm(s);
    Mailbox box(1 << 20, nullptr, 0);
    box.set_oracle(&oracle);
    ReferenceMailbox ref;
    for (const E& e : scene) {
      box.enqueue(make_msg(0, e.src, e.tag, e.id));
      ref.enqueue(make_msg(0, e.src, e.tag, e.id));
    }
    std::optional<Message> got = box.try_dequeue_match(0, kAnySource, kAnyTag);
    std::optional<Message> want = ref.try_dequeue_match(0, alt.src, alt.tag);
    ASSERT_TRUE(got.has_value());
    ASSERT_TRUE(want.has_value());
    EXPECT_EQ(got->bytes, want->bytes)
        << "forcing (" << alt.src << "," << alt.tag
        << ") did not take that bin's FIFO head";
    // With the pin consumed, the remainder drains in arrival order.
    while (auto g = box.try_dequeue_match(0, kAnySource, kAnyTag)) {
      auto w = ref.try_dequeue_match(0, kAnySource, kAnyTag);
      ASSERT_TRUE(w.has_value());
      EXPECT_EQ(g->bytes, w->bytes);
    }
    EXPECT_EQ(box.size(), ref.size());
    EXPECT_EQ(ref.size(), 0u);
    EXPECT_FALSE(oracle.diverged());
  }
}

TEST(MailboxOracle, PinnedTryDequeueWaitsForThePinnedBin) {
  // A compatible pin whose bin has no message yet makes try_dequeue
  // return nothing (the recorded run matched that bin; a replay must not
  // grab a different message just because it arrived first).
  explore::ScheduleOracle oracle(1);
  explore::Schedule s;
  s.pins.push_back(explore::Pin{0, 0, /*src=*/4, /*tag=*/9});
  oracle.arm(s);
  Mailbox box(1 << 20, nullptr, 0);
  box.set_oracle(&oracle);
  box.enqueue(make_msg(0, 1, 9, 1));
  EXPECT_FALSE(box.try_dequeue_match(0, kAnySource, 9).has_value());
  box.enqueue(make_msg(0, 4, 9, 2));
  auto got = box.try_dequeue_match(0, kAnySource, 9);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->bytes, 2u);  // the pinned bin's head, not arrival order
  // Pin consumed: the earlier message is still there, now the default.
  auto next = box.try_dequeue_match(0, kAnySource, 9);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->bytes, 1u);
  EXPECT_FALSE(oracle.diverged());
}

TEST(MailboxOracle, IncompatiblePinFallsBackAndFlagsDivergence) {
  // A pin recorded under a different receive pattern cannot apply: the
  // mailbox takes the default match and the oracle notes the divergence.
  explore::ScheduleOracle oracle(1);
  explore::Schedule s;
  s.pins.push_back(explore::Pin{0, 0, /*src=*/2, /*tag=*/8});
  oracle.arm(s);
  Mailbox box(1 << 20, nullptr, 0);
  box.set_oracle(&oracle);
  box.enqueue(make_msg(0, 1, 3, 1));
  box.enqueue(make_msg(0, 2, 3, 2));
  // Receive with tag 3: the pin's tag 8 can never match this pattern.
  auto got = box.try_dequeue_match(0, kAnySource, /*tag=*/3);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->bytes, 1u);  // default min-seq choice
  EXPECT_TRUE(oracle.diverged());
}

// ---- Fast-path (SPSC rings) properties --------------------------------------

TEST(MailboxFastPath, HintedMatchesReferenceAcrossPathTransitions) {
  // The two-path mailbox against the linear reference, now with the fast
  // path actually engaged: exact receives carry src_world hints, bursts
  // overflow the 64-slot rings (forcing the spill-then-restamp path), and
  // mid-stream an oracle or a (failure-free) ULFM state attaches and
  // detaches — pinning the slow path and draining the rings — while the
  // stream keeps flowing.  Every observation must equal the reference.
  constexpr int kSources = 4;
  constexpr int kTags = 3;
  constexpr int kOpsPerSeed = 8000;

  for (std::uint32_t seed : {3u, 17u, 4242u}) {
    std::mt19937 rng(seed);
    explore::ScheduleOracle oracle(1);
    ft::FailureState fs(/*nranks=*/kSources, ft::FtConfig{});
    Mailbox box(/*capacity=*/1 << 20, nullptr, /*owner_rank=*/0);
    ReferenceMailbox ref;
    std::size_t next_id = 1;
    bool oracle_on = false;
    bool ft_on = false;

    for (int op = 0; op < kOpsPerSeed; ++op) {
      const unsigned kind = rng() % 16;
      if (kind == 15) {
        // Path transition while messages are in flight.
        switch (rng() % 4) {
          case 0:
            box.set_oracle(oracle_on ? nullptr : &oracle);
            oracle_on = !oracle_on;
            break;
          case 1:
            box.set_failure_state(ft_on ? nullptr : &fs);
            ft_on = !ft_on;
            break;
          default: {
            // Ring-overflow burst: >64 messages from one source with no
            // receive in between spill into the locked core mid-stream.
            const int src = static_cast<int>(rng() % kSources);
            const int tag = static_cast<int>(rng() % kTags);
            for (int i = 0; i < 80; ++i) {
              box.enqueue(make_msg(0, src, tag, next_id));
              ref.enqueue(make_msg(0, src, tag, next_id));
              ++next_id;
            }
            break;
          }
        }
      } else if (kind < 8 || ref.size() == 0) {
        const int src = static_cast<int>(rng() % kSources);
        const int tag = static_cast<int>(rng() % kTags);
        box.enqueue(make_msg(0, src, tag, next_id));
        ref.enqueue(make_msg(0, src, tag, next_id));
        ++next_id;
      } else if (kind < 13) {
        // Exact receive WITH hint (make_msg sets src_world = src): this is
        // the lock-free pop whenever the box is unpinned and drained.
        const int src = static_cast<int>(rng() % kSources);
        const int tag = static_cast<int>(rng() % kTags);
        std::optional<Message> got =
            box.try_dequeue_match(0, src, tag, /*src_world_hint=*/src);
        std::optional<Message> want = ref.try_dequeue_match(0, src, tag);
        ASSERT_EQ(got.has_value(), want.has_value())
            << "seed=" << seed << " op=" << op;
        if (got) {
          EXPECT_EQ(got->bytes, want->bytes)
              << "seed=" << seed << " op=" << op
              << ": fast path broke arrival order";
        }
      } else if (kind < 15) {
        const bool wild_tag = rng() % 2 == 0;
        const int src = kAnySource;
        const int tag = wild_tag ? kAnyTag : static_cast<int>(rng() % kTags);
        std::optional<Message> got = box.try_dequeue_match(0, src, tag);
        std::optional<Message> want = ref.try_dequeue_match(0, src, tag);
        ASSERT_EQ(got.has_value(), want.has_value())
            << "seed=" << seed << " op=" << op;
        if (got) {
          EXPECT_EQ(got->bytes, want->bytes) << "op=" << op;
        }
      } else {
        const int tag = static_cast<int>(rng() % kTags);
        std::optional<mpi::Status> got = box.try_probe(0, kAnySource, tag);
        std::optional<mpi::Status> want = ref.try_probe(0, kAnySource, tag);
        ASSERT_EQ(got.has_value(), want.has_value()) << "op=" << op;
        if (got) {
          EXPECT_EQ(got->bytes, want->bytes) << "op=" << op;
        }
      }
      ASSERT_EQ(box.size(), ref.size()) << "seed=" << seed << " op=" << op;
    }

    // Drain and compare the remainder, then confirm both paths really ran.
    box.set_oracle(nullptr);
    box.set_failure_state(nullptr);
    while (auto got = box.try_dequeue_match(0, kAnySource, kAnyTag)) {
      auto want = ref.try_dequeue_match(0, kAnySource, kAnyTag);
      ASSERT_TRUE(want.has_value());
      EXPECT_EQ(got->bytes, want->bytes);
    }
    EXPECT_EQ(ref.try_dequeue_match(0, kAnySource, kAnyTag), std::nullopt);
    const Mailbox::FastStats s = box.fast_stats();
    EXPECT_GT(s.fast_enqueues, 0u) << "fast path never engaged";
    EXPECT_GT(s.slow_enqueues, 0u) << "slow path never engaged";
    EXPECT_GT(s.drained, 0u) << "no fast->slow transition was exercised";
    EXPECT_EQ(s.fast_enqueues, s.fast_hits + s.drained)
        << "a ring message was neither popped nor drained";
  }
}

TEST(MailboxFastPath, AdaptiveBypassLatchesOnHintlessTrafficAndRearms) {
  // A consumer that never passes hints turns the rings into pure
  // overhead; after enough drained messages the producers must route
  // straight to the locked core, and the first hinted receive must
  // re-arm the rings.
  Mailbox box(1 << 20, nullptr, /*owner_rank=*/0);
  for (int i = 0; i < 400; ++i) {
    box.enqueue(make_msg(0, 1, 7, static_cast<std::size_t>(i) + 1));
    auto got = box.try_dequeue_match(0, 1, 7);  // hintless: always drains
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->bytes, static_cast<std::size_t>(i) + 1);
  }
  const Mailbox::FastStats latched = box.fast_stats();
  EXPECT_GT(latched.slow_enqueues, 0u)
      << "hintless traffic never latched the ring bypass";
  EXPECT_EQ(latched.fast_hits, 0u);

  // Re-arming is hysteretic: a short run of hinted receives (fewer than
  // kRearmHintedPops) must NOT flip the latch — a stray hinted probe
  // inside hintless traffic would otherwise re-trigger the drain detour.
  for (std::size_t i = 1; i <= 3; ++i) {
    box.enqueue(make_msg(0, 1, 7, 1000 + i));
    auto got = box.try_dequeue_match(0, 1, 7, /*src_world_hint=*/1);
    ASSERT_TRUE(got.has_value());  // slow-path message, latch still set
    EXPECT_EQ(got->bytes, 1000 + i);
  }
  const Mailbox::FastStats still = box.fast_stats();
  EXPECT_EQ(still.fast_enqueues, latched.fast_enqueues)
      << "a sub-threshold hinted run must not re-arm the rings";

  // The threshold-crossing hinted receive re-arms: the next send rides
  // the ring and the next hinted receive pops it lock-free.
  box.enqueue(make_msg(0, 1, 7, 1004));
  auto rearming = box.try_dequeue_match(0, 1, 7, /*src_world_hint=*/1);
  ASSERT_TRUE(rearming.has_value());  // still served by the slow path
  EXPECT_EQ(rearming->bytes, 1004u);
  box.enqueue(make_msg(0, 1, 7, 1005));
  auto fast = box.try_dequeue_match(0, 1, 7, /*src_world_hint=*/1);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(fast->bytes, 1005u);
  const Mailbox::FastStats rearmed = box.fast_stats();
  EXPECT_GT(rearmed.fast_enqueues, latched.fast_enqueues)
      << "hinted receives past the hysteresis did not re-arm the rings";
  EXPECT_GT(rearmed.fast_hits, 0u);
}

TEST(MailboxFastPath, LatchedBypassKeepsArrivalOrderParity) {
  // Once the bypass latches (hintless consumer), every enqueue lands in
  // the locked core and every receive must observe exactly the order the
  // reference (single linear queue) would produce — the latch is a
  // routing heuristic, never a semantics change.
  Mailbox box(1 << 20, nullptr, /*owner_rank=*/0);
  ReferenceMailbox ref;
  std::mt19937 rng(0xB417);
  // Drive the latch with hintless traffic.
  for (std::size_t i = 0; i < 300; ++i) {
    box.enqueue(make_msg(0, 1, 7, i + 1));
    auto got = box.try_dequeue_match(0, 1, 7);
    ASSERT_TRUE(got.has_value());
  }
  ASSERT_GT(box.fast_stats().slow_enqueues, 0u)
      << "hintless traffic never latched the bypass";

  // Interleaved arrivals from several sources, then a random mix of
  // wildcard and exact hintless receives checked against the reference.
  std::size_t id = 10'000;
  for (int round = 0; round < 50; ++round) {
    for (int k = 0; k < 4; ++k) {
      const int src = static_cast<int>(rng() % 3);
      const int tag = 1 + static_cast<int>(rng() % 2);
      ++id;
      box.enqueue(make_msg(0, src, tag, id));
      ref.enqueue(make_msg(0, src, tag, id));
    }
    for (int k = 0; k < 4; ++k) {
      const int src =
          (rng() % 2 == 0) ? kAnySource : static_cast<int>(rng() % 3);
      const int tag = (rng() % 2 == 0) ? kAnyTag : 1 + static_cast<int>(rng() % 2);
      auto got = box.try_dequeue_match(0, src, tag);
      auto want = ref.try_dequeue_match(0, src, tag);
      ASSERT_EQ(got.has_value(), want.has_value());
      if (got) {
        EXPECT_EQ(got->bytes, want->bytes)
            << "latched box diverged from reference order";
      }
    }
  }
  EXPECT_EQ(box.size(), ref.size());
}

TEST(MailboxFastPath, CrossThreadSpscStreamsStayInPerSenderOrder) {
  // Two producer threads (distinct src worlds, so distinct rings) blast
  // messages at one blocking consumer.  Per-sender FIFO must survive ring
  // overflows, drains, and the Dekker sleep/wake handshake.
  // Capacity must exceed the total message count: with a bounded box a
  // fast producer can fill it entirely and deadlock against a consumer
  // waiting for the *other* (capacity-blocked) producer.  Single-sender
  // capacity blocking is covered by the dedicated test below.  A
  // per-producer credit window keeps each sender at most 32 ahead of
  // the consumer — without it a single-CPU host lets the producers
  // finish first and the whole run degenerates to slow-path pops.
  constexpr std::size_t kPerSender = 30000;
  constexpr std::size_t kWindow = 32;
  Mailbox box(/*capacity=*/1 << 20, nullptr, /*owner_rank=*/0);
  std::atomic<std::size_t> consumed[2] = {{0}, {0}};

  auto producer = [&box, &consumed](int src) {
    for (std::size_t i = 1; i <= kPerSender; ++i) {
      while (i - consumed[src].load(std::memory_order_acquire) > kWindow) {
        std::this_thread::yield();
      }
      box.enqueue(make_msg(0, src, /*tag=*/5, i));
    }
  };
  std::thread p0(producer, 0);
  std::thread p1(producer, 1);

  std::size_t expect0 = 1;
  std::size_t expect1 = 1;
  std::mt19937 rng(99);
  while (expect0 <= kPerSender || expect1 <= kPerSender) {
    // Randomly interleave the two streams (blocking receives), with an
    // occasional hintless receive to force a mid-stream drain.
    const bool pick0 =
        expect1 > kPerSender || (expect0 <= kPerSender && rng() % 2 == 0);
    const int src = pick0 ? 0 : 1;
    Message got;
    switch (rng() % 8) {
      case 0:  // hintless blocking receive: forces a full ring drain
        got = box.dequeue_match(0, src, 5, /*src_world_hint=*/-1);
        break;
      case 1:  // hinted blocking receive: the cv-park Dekker handshake
        got = box.dequeue_match(0, src, 5, src);
        break;
      default:
        // Spinning hinted receive: a consumer that never parks is the
        // regime the lock-free pop exists for (a parked consumer's
        // wake predicate drains the rings, so everything it sees went
        // through the bins).
        for (;;) {
          std::optional<Message> m = box.try_dequeue_match(0, src, 5, src);
          if (m) {
            got = std::move(*m);
            break;
          }
          std::this_thread::yield();
        }
    }
    std::size_t& expect = pick0 ? expect0 : expect1;
    ASSERT_EQ(got.bytes, expect) << "per-sender FIFO order broken";
    ++expect;
    consumed[src].store(expect - 1, std::memory_order_release);
  }
  p0.join();
  p1.join();
  EXPECT_EQ(box.size(), 0u);
  const Mailbox::FastStats s = box.fast_stats();
  EXPECT_GT(s.fast_hits, 0u) << "consumer never used the lock-free pop";
  EXPECT_EQ(s.fast_enqueues, s.fast_hits + s.drained);
}

TEST(MailboxFastPath, CapacityBlockedSenderRecoversViaFastPops) {
  // Capacity far below the message count: the sender must park on the
  // drain condition and be woken by lock-free pops on the other side
  // (the try_fast_pop half of the Dekker handshake).
  constexpr std::size_t kTotal = 20000;
  Mailbox box(/*capacity=*/96, nullptr, /*owner_rank=*/0);
  std::thread sender([&box] {
    for (std::size_t i = 1; i <= kTotal; ++i) {
      box.enqueue(make_msg(0, 2, 9, i));
    }
  });
  for (std::size_t i = 1; i <= kTotal; ++i) {
    const Message got = box.dequeue_match(0, 2, 9, /*src_world_hint=*/2);
    ASSERT_EQ(got.bytes, i);
  }
  sender.join();
  EXPECT_EQ(box.size(), 0u);
}

// ---- PayloadPool ------------------------------------------------------------

TEST(PayloadPool, ZeroBytePathTouchesNothing) {
  PayloadPool pool;
  PooledPayload p = pool.acquire_copy(nullptr, 0);
  EXPECT_TRUE(p.empty());
  EXPECT_FALSE(p.is_inline());
  EXPECT_FALSE(p.is_pooled());
  // No storage tier was exercised: every counter stays zero.
  EXPECT_EQ(pool.stats().inline_grabs.load(), 0u);
  EXPECT_EQ(pool.stats().allocs.load(), 0u);
  EXPECT_EQ(pool.stats().reuses.load(), 0u);
  p.release();
  EXPECT_EQ(pool.stats().recycled.load(), 0u);
  EXPECT_EQ(pool.stats().dropped.load(), 0u);
}

TEST(PayloadPool, SmallPayloadsLiveInline) {
  PayloadPool pool;
  std::vector<std::byte> src(PooledPayload::kInlineBytes, std::byte{0xab});
  PooledPayload p = pool.acquire_copy(src.data(), src.size());
  EXPECT_TRUE(p.is_inline());
  EXPECT_FALSE(p.is_pooled());
  EXPECT_EQ(pool.stats().inline_grabs.load(), 1u);
  EXPECT_EQ(pool.stats().allocs.load(), 0u);
  ASSERT_EQ(p.size(), src.size());
  EXPECT_EQ(std::memcmp(p.data(), src.data(), src.size()), 0);

  // Moves carry the bytes (the handle owns them, no external storage).
  PooledPayload q = std::move(p);
  EXPECT_TRUE(p.empty());  // NOLINT(bugprone-use-after-move): asserted state
  ASSERT_EQ(q.size(), src.size());
  EXPECT_EQ(std::memcmp(q.data(), src.data(), src.size()), 0);
}

TEST(PayloadPool, BuffersRecycleThroughTheFreelist) {
  PayloadPool pool;
  std::vector<std::byte> src(512, std::byte{0x5c});
  {
    PooledPayload p = pool.acquire_copy(src.data(), src.size());
    EXPECT_TRUE(p.is_pooled());
    EXPECT_EQ(pool.stats().allocs.load(), 1u);
  }  // handle death returns the buffer
  EXPECT_EQ(pool.stats().recycled.load(), 1u);
  EXPECT_EQ(pool.free_buffers(), 1u);
  {
    PooledPayload p = pool.acquire_copy(src.data(), src.size());
    EXPECT_TRUE(p.is_pooled());
    ASSERT_EQ(p.size(), src.size());
    EXPECT_EQ(std::memcmp(p.data(), src.data(), src.size()), 0);
  }
  EXPECT_EQ(pool.stats().reuses.load(), 1u);
  EXPECT_EQ(pool.stats().allocs.load(), 1u) << "second acquire re-allocated";
}

TEST(PayloadPool, OversizedPayloadsAreNotHoarded) {
  PayloadPool pool;
  const std::size_t big = PayloadPool::kMaxBucketBytes + 1;
  std::vector<std::byte> src(big, std::byte{0x01});
  {
    PooledPayload p = pool.acquire_copy(src.data(), src.size());
    EXPECT_FALSE(p.is_pooled());
    EXPECT_FALSE(p.is_inline());
    EXPECT_EQ(p.size(), big);
  }
  EXPECT_EQ(pool.free_buffers(), 0u) << "a >4MiB buffer was cached";
}

TEST(PayloadPool, SteadyStateEagerTrafficStopsAllocating) {
  // End-to-end: after warm-up, an eager ping-pong must be served entirely
  // from the freelist (the allocation count stops moving).
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = 2;
  wc.ppn = 2;
  mpi::World w(wc);
  auto pingpong = [&](int iters) {
    w.run([&](mpi::Comm& c) {
      std::vector<std::byte> sbuf(512, std::byte{0x77});
      std::vector<std::byte> rbuf(512);
      for (int i = 0; i < iters; ++i) {
        if (c.rank() == 0) {
          c.send(mpi::ConstView{sbuf.data(), sbuf.size()}, 1, 3);
          (void)c.recv(mpi::MutView{rbuf.data(), rbuf.size()}, 1, 3);
        } else {
          (void)c.recv(mpi::MutView{rbuf.data(), rbuf.size()}, 0, 3);
          c.send(mpi::ConstView{sbuf.data(), sbuf.size()}, 0, 3);
        }
      }
    });
  };
  pingpong(50);  // warm the freelists
  const auto allocs_before = w.engine().payload_pool().stats().allocs.load();
  pingpong(500);
  const auto allocs_after = w.engine().payload_pool().stats().allocs.load();
  EXPECT_EQ(allocs_after, allocs_before)
      << "steady-state eager traffic still hits the allocator";
  EXPECT_GT(w.engine().payload_pool().stats().reuses.load(), 900u);
}

TEST(PayloadPool, MultiProducerFreelistStressKeepsBuffersDistinct) {
  // Four threads hammer one pool with 512-byte acquire/release cycles,
  // each stamping its buffers with a thread-unique pattern.  The lock-free
  // freelist must never hand the same buffer to two live handles (the
  // pattern check would fail), must leak nothing, and must respect the
  // per-bucket cache bound once the threads join.
  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 20000;
  PayloadPool pool;
  std::atomic<int> mismatches{0};

  auto worker = [&pool, &mismatches](int tid) {
    std::vector<std::byte> src(512);
    std::mt19937 rng(static_cast<std::uint32_t>(tid) * 7919u + 1u);
    for (int i = 0; i < kItersPerThread; ++i) {
      const auto stamp =
          static_cast<std::byte>((tid << 6) | (i & 0x3f));
      std::fill(src.begin(), src.end(), stamp);
      PooledPayload a = pool.acquire_copy(src.data(), src.size());
      // Occasionally hold two handles at once to force freelist misses.
      PooledPayload b;
      if (rng() % 4 == 0) {
        b = pool.acquire_copy(src.data(), src.size());
      }
      for (const PooledPayload* p : {&a, &b}) {
        if (p->empty()) continue;
        if (p->size() != src.size() ||
            std::memcmp(p->data(), src.data(), src.size()) != 0) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0)
      << "two live handles aliased one pooled buffer";
  EXPECT_EQ(pool.outstanding(), 0u) << "pooled buffers leaked";
  EXPECT_LE(pool.free_buffers(),
            PayloadPool::kNumBuckets * (PayloadPool::kMaxFreePerBucket + 1))
      << "freelist cached past its per-bucket bound (ring + hot slot)";
  const auto& st = pool.stats();
  EXPECT_GT(st.reuses.load(), 0u) << "freelist never recycled under stress";
  // Every pooled acquire was either a fresh allocation or a freelist hit,
  // and with all handles dead every one of them came back.
  EXPECT_EQ(st.recycled.load() + st.dropped.load(),
            st.allocs.load() + st.reuses.load())
      << "alloc/recycle accounting drifted";
}
