// Unit tests for link models, topology/placement, cluster presets, MPI
// tuning presets and the NetworkModel.
#include <gtest/gtest.h>

#include "net/cluster.hpp"
#include "net/link_model.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "net/tuning.hpp"

using namespace ombx::net;

TEST(LinkModel, SingleSegmentIsAffine) {
  LinkModel m{{1024, 2.0, 0.001}};
  EXPECT_DOUBLE_EQ(m.transfer_us(0), 2.0);
  EXPECT_DOUBLE_EQ(m.transfer_us(1000), 3.0);
}

TEST(LinkModel, SegmentsSelectBySize) {
  LinkModel m{{1024, 1.0, 0.0}, {1048576, 5.0, 0.001}};
  EXPECT_DOUBLE_EQ(m.transfer_us(1024), 1.0);
  EXPECT_DOUBLE_EQ(m.transfer_us(2048), 5.0 + 2.048);
}

TEST(LinkModel, LastSegmentCoversEverything) {
  LinkModel m{{64, 1.0, 0.0}};
  EXPECT_DOUBLE_EQ(m.transfer_us(1 << 30), 1.0);
}

TEST(LinkModel, BandwidthConvention) {
  // 1 B/us == 1 MB/s in the OSU convention.
  LinkModel m{{~std::size_t{0}, 0.0, 1.0}};
  EXPECT_NEAR(m.bandwidth_mbps(1000), 1.0, 1e-12);
}

TEST(LinkModel, ScaledBetaLeavesAlpha) {
  LinkModel m{{~std::size_t{0}, 3.0, 0.002}};
  const LinkModel s = m.scaled_beta(2.0);
  EXPECT_DOUBLE_EQ(s.transfer_us(0), 3.0);
  EXPECT_DOUBLE_EQ(s.transfer_us(1000), 3.0 + 4.0);
}

TEST(LinkModel, ShiftedAlphaClampsAtZero) {
  LinkModel m{{~std::size_t{0}, 1.0, 0.0}};
  EXPECT_DOUBLE_EQ(m.shifted_alpha(-5.0).transfer_us(0), 0.0);
  EXPECT_DOUBLE_EQ(m.shifted_alpha(0.5).transfer_us(0), 1.5);
}

TEST(Topology, CoreCounts) {
  Topology t{.nodes = 4, .sockets_per_node = 2, .cores_per_socket = 14};
  EXPECT_EQ(t.cores_per_node(), 28);
  EXPECT_EQ(t.total_cores(), 112);
}

TEST(RankMapper, BlockPlacement) {
  Topology t{.nodes = 4, .sockets_per_node = 2, .cores_per_socket = 2};
  RankMapper m(t, /*ppn=*/4);
  EXPECT_EQ(m.place(0).node, 0);
  EXPECT_EQ(m.place(3).node, 0);
  EXPECT_EQ(m.place(4).node, 1);
  EXPECT_EQ(m.place(0).socket, 0);
  EXPECT_EQ(m.place(2).socket, 1);
  EXPECT_EQ(m.place(5).socket, 0);
}

TEST(RankMapper, RejectsBadGeometry) {
  Topology t{.nodes = 2, .sockets_per_node = 2, .cores_per_socket = 2};
  EXPECT_THROW(RankMapper(t, 0), std::invalid_argument);
  EXPECT_THROW(RankMapper(t, 5), std::invalid_argument);
  RankMapper m(t, 4);
  EXPECT_THROW((void)m.place(8), std::invalid_argument);
  EXPECT_THROW((void)m.place(-1), std::invalid_argument);
}

TEST(ClusterPresets, MatchPaperTopologies) {
  const ClusterSpec f = ClusterSpec::frontera();
  EXPECT_EQ(f.topo.cores_per_node(), 56);  // 2 x 28 Cascade Lake
  EXPECT_EQ(f.topo.nodes, 16);
  const ClusterSpec s = ClusterSpec::stampede2();
  EXPECT_EQ(s.topo.cores_per_node(), 48);  // 2 x 24 Skylake
  const ClusterSpec r = ClusterSpec::ri2();
  EXPECT_EQ(r.topo.cores_per_node(), 28);  // 2 x 14 Xeon Gold
  EXPECT_EQ(r.topo.nodes, 8);
  const ClusterSpec g = ClusterSpec::ri2_gpu();
  EXPECT_EQ(g.topo.gpus_per_node, 1);  // one V100 per node
  ASSERT_TRUE(g.gpu.has_value());
  EXPECT_EQ(g.gpu->device_memory_bytes, 32ULL << 30);
}

TEST(ClusterPresets, LatencyOrderingSmallMessages) {
  // Shared memory must beat the fabric at small sizes on every cluster.
  for (const ClusterSpec& c : {ClusterSpec::frontera(),
                               ClusterSpec::stampede2(),
                               ClusterSpec::ri2()}) {
    EXPECT_LT(c.intra_socket.transfer_us(8), c.inter_node.transfer_us(8))
        << c.name;
    EXPECT_LT(c.intra_socket.transfer_us(8), c.inter_socket.transfer_us(64))
        << c.name;
  }
}

TEST(Tuning, PresetsDiffer) {
  const MpiTuning mv = MpiTuning::mvapich2();
  const MpiTuning im = MpiTuning::intelmpi();
  EXPECT_NE(mv.name, im.name);
  EXPECT_GT(im.alpha_delta_us, mv.alpha_delta_us);
  EXPECT_GT(im.gap_scale, mv.gap_scale);
  EXPECT_LT(im.eager_threshold_inter, mv.eager_threshold_inter);
}

TEST(NetworkModel, LinkClassResolution) {
  NetworkModel nm(ClusterSpec::frontera(), MpiTuning::mvapich2(), /*ppn=*/2);
  EXPECT_EQ(nm.link_class(0, 0, MemSpace::kHost), LinkClass::kSelf);
  EXPECT_EQ(nm.link_class(0, 1, MemSpace::kHost), LinkClass::kIntraSocket);
  EXPECT_EQ(nm.link_class(0, 2, MemSpace::kHost), LinkClass::kInterNode);
}

TEST(NetworkModel, InterSocketDetection) {
  // ppn = 56 fills both sockets: ranks 0 and 28 share a node, not a socket.
  NetworkModel nm(ClusterSpec::frontera(), MpiTuning::mvapich2(),
                  /*ppn=*/56);
  EXPECT_EQ(nm.link_class(0, 27, MemSpace::kHost), LinkClass::kIntraSocket);
  EXPECT_EQ(nm.link_class(0, 28, MemSpace::kHost), LinkClass::kInterSocket);
  EXPECT_EQ(nm.link_class(0, 56, MemSpace::kHost), LinkClass::kInterNode);
}

TEST(NetworkModel, GpuLinkClasses) {
  NetworkModel nm(ClusterSpec::ri2_gpu(), MpiTuning::mvapich2_gdr(),
                  /*ppn=*/1);
  EXPECT_EQ(nm.link_class(0, 1, MemSpace::kDevice),
            LinkClass::kGpuInterNode);
  EXPECT_EQ(nm.link_class(0, 0, MemSpace::kDevice),
            LinkClass::kGpuIntraNode);
}

TEST(NetworkModel, DeviceSpaceOnCpuClusterThrows) {
  NetworkModel nm(ClusterSpec::frontera(), MpiTuning::mvapich2(), 1);
  EXPECT_THROW((void)nm.link_class(0, 1, MemSpace::kDevice),
               std::logic_error);
}

TEST(NetworkModel, TransferMonotoneInSize) {
  NetworkModel nm(ClusterSpec::frontera(), MpiTuning::mvapich2(), 1);
  double prev = 0.0;
  for (std::size_t s = 1; s <= (1U << 22); s *= 4) {
    const double t = nm.transfer_us(0, 1, s, MemSpace::kHost);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(NetworkModel, ContentionStretchesInterNodeBandwidthOnly) {
  NetworkModel one(ClusterSpec::frontera(), MpiTuning::mvapich2(), 1);
  NetworkModel full(ClusterSpec::frontera(), MpiTuning::mvapich2(), 56);
  const std::size_t big = 1 << 20;
  EXPECT_GT(full.transfer_us(0, 56, big, MemSpace::kHost),
            one.transfer_us(0, 1, big, MemSpace::kHost));
  // Startup cost is contention-free.
  EXPECT_NEAR(full.alpha_us(0, 56, MemSpace::kHost),
              one.alpha_us(0, 1, MemSpace::kHost), 1e-9);
}

TEST(NetworkModel, IntelMpiSlowerThanMvapich) {
  NetworkModel mv(ClusterSpec::frontera(), MpiTuning::mvapich2(), 1);
  NetworkModel im(ClusterSpec::frontera(), MpiTuning::intelmpi(), 1);
  for (std::size_t s : {1UL, 1024UL, 1UL << 20}) {
    EXPECT_GT(im.transfer_us(0, 1, s, MemSpace::kHost),
              mv.transfer_us(0, 1, s, MemSpace::kHost));
  }
}

TEST(NetworkModel, ProtocolSwitchesAtEagerThreshold) {
  const MpiTuning t = MpiTuning::mvapich2();
  NetworkModel nm(ClusterSpec::frontera(), t, 1);
  EXPECT_EQ(nm.protocol(0, 1, t.eager_threshold_inter, MemSpace::kHost),
            Protocol::kEager);
  EXPECT_EQ(nm.protocol(0, 1, t.eager_threshold_inter + 1, MemSpace::kHost),
            Protocol::kRendezvous);
}

TEST(NetworkModel, SenderBusyShmVsFabric) {
  NetworkModel nm(ClusterSpec::frontera(), MpiTuning::mvapich2(), 2);
  const std::size_t n = 1 << 16;
  // CPU-driven shm copy occupies the sender for the whole transfer...
  EXPECT_DOUBLE_EQ(nm.sender_busy_us(0, 1, n, MemSpace::kHost),
                   nm.transfer_us(0, 1, n, MemSpace::kHost));
  // ...while the NIC DMA only charges injection overhead.
  NetworkModel inter(ClusterSpec::frontera(), MpiTuning::mvapich2(), 1);
  EXPECT_LT(inter.sender_busy_us(0, 1, n, MemSpace::kHost), 1.0);
  EXPECT_GT(inter.nic_gap_us(0, 1, n, MemSpace::kHost), 0.0);
}

TEST(NetworkModel, OversubscriptionRequiresFullNodeAndThreadMultiple) {
  NetworkModel half(ClusterSpec::frontera(), MpiTuning::mvapich2(), 28);
  EXPECT_DOUBLE_EQ(half.oversubscription_factor(ThreadLevel::kMultiple),
                   1.0);
  NetworkModel full(ClusterSpec::frontera(), MpiTuning::mvapich2(), 56);
  EXPECT_DOUBLE_EQ(full.oversubscription_factor(ThreadLevel::kSingle), 1.0);
  EXPECT_GT(full.oversubscription_factor(ThreadLevel::kMultiple), 1.0);
}

TEST(NetworkModel, RejectsOversizedJob) {
  EXPECT_THROW(NetworkModel(ClusterSpec::ri2(), MpiTuning::mvapich2(), 64),
               std::invalid_argument);
}

TEST(LinkClassNames, AreHumanReadable) {
  EXPECT_EQ(to_string(LinkClass::kIntraSocket), "intra-socket");
  EXPECT_EQ(to_string(LinkClass::kGpuInterNode), "gpu-inter-node");
}
