// GPU-aware communication: ping-pong V100-to-V100 across nodes with each
// of the three simulated Python GPU buffer libraries (CuPy, PyCUDA,
// Numba), against the native CUDA-aware-MPI baseline — the experiment
// behind the paper's Figs 22-23.
//
//   $ ./gpu_pingpong
#include <iostream>

#include "bench_suite/suite.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"

int main() {
  using namespace ombx;

  core::SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::ri2_gpu();
  cfg.tuning = net::MpiTuning::mvapich2_gdr();
  cfg.nranks = 2;
  cfg.ppn = 1;  // one GPU per node -> inter-node GPUDirect path
  cfg.opts.min_size = 1;
  cfg.opts.max_size = 1 << 20;

  const auto sweep = [&](core::Mode mode, buffers::BufferKind kind) {
    core::SuiteConfig c = cfg;
    c.mode = mode;
    c.buffer = kind;
    return bench_suite::run_latency(c);
  };

  const auto base = sweep(core::Mode::kNativeC, buffers::BufferKind::kCupy);
  const auto cupy =
      sweep(core::Mode::kPythonDirect, buffers::BufferKind::kCupy);
  const auto pycuda =
      sweep(core::Mode::kPythonDirect, buffers::BufferKind::kPycuda);
  const auto numba =
      sweep(core::Mode::kPythonDirect, buffers::BufferKind::kNumba);

  core::Table table(
      "GPU latency, RI2 V100 <-> V100 (MVAPICH2-GDR)",
      {"Size", "OMB (us)", "CuPy (us)", "PyCUDA (us)", "Numba (us)"});
  for (std::size_t i = 0; i < base.size(); ++i) {
    table.add_row(base[i].size,
                  {base[i].stats.avg, cupy[i].stats.avg,
                   pycuda[i].stats.avg, numba[i].stats.avg});
  }
  table.print(std::cout);
  std::cout << "\nCuPy and PyCUDA track each other closely; Numba's CUDA "
               "Array Interface\nexport costs roughly twice as much per "
               "call, exactly as the paper reports.\n";
  return 0;
}
