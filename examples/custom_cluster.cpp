// Model your own machine: define a ClusterSpec from scratch, then measure
// how an Allreduce behaves across its fabric under different collective
// algorithms.  This is the path downstream users take to ask "what would
// my cluster do?" before buying time on it.
//
//   $ ./custom_cluster
#include <iostream>

#include "bench_suite/suite.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"

int main() {
  using namespace ombx;

  // A small 4-node EPYC-ish cluster with 25 GbE (much slower than IB).
  net::ClusterSpec mini;
  mini.name = "frontera";  // reuse the frontera binding-cost preset
  mini.topo = {.nodes = 4, .sockets_per_node = 2, .cores_per_socket = 16,
               .gpus_per_node = 0};
  const auto gbps = [](double x) { return 1.0 / (x * 1000.0); };
  mini.self_copy = net::LinkModel{{~std::size_t{0}, 0.05, gbps(20.0)}};
  mini.intra_socket = net::LinkModel{{8192, 0.30, gbps(12.0)},
                                     {~std::size_t{0}, 2.0, gbps(8.0)}};
  mini.inter_socket = net::LinkModel{{8192, 0.55, gbps(9.0)},
                                     {~std::size_t{0}, 2.6, gbps(6.5)}};
  // 25 GbE: ~12 us small-message latency, ~3 GB/s effective.
  mini.inter_node = net::LinkModel{{8192, 12.0, gbps(2.2)},
                                   {~std::size_t{0}, 18.0, gbps(3.0)}};
  mini.compute = {.flops_per_us = 4200.0, .bytes_per_us = 9000.0};

  core::SuiteConfig cfg;
  cfg.cluster = mini;
  cfg.tuning = net::MpiTuning::mvapich2();
  cfg.nranks = 4;
  cfg.ppn = 1;  // one rank per node: fabric-bound collectives
  cfg.mode = core::Mode::kPythonDirect;
  cfg.opts.min_size = 4;
  cfg.opts.max_size = 1 << 20;

  core::Table table("Allreduce on a custom 4-node 25GbE cluster",
                    {"Size", "RecDoubling (us)", "Ring (us)",
                     "Reduce+Bcast (us)"});

  const auto run_with = [&](net::AllreduceAlgo algo) {
    core::SuiteConfig c = cfg;
    c.tuning.allreduce = algo;
    return bench_suite::run_collective(c, bench_suite::CollBench::kAllreduce);
  };
  const auto rd = run_with(net::AllreduceAlgo::kRecursiveDoubling);
  const auto ring = run_with(net::AllreduceAlgo::kRing);
  const auto rb = run_with(net::AllreduceAlgo::kReduceBcast);

  for (std::size_t i = 0; i < rd.size(); ++i) {
    table.add_row(rd[i].size, {rd[i].stats.avg, ring[i].stats.avg,
                               rb[i].stats.avg});
  }
  table.print(std::cout);
  std::cout << "\nNote the crossover: recursive doubling wins the "
               "latency-bound small\nmessages, the ring wins once the "
               "bandwidth term dominates.\n";
  return 0;
}
