// Fault-tolerance demo: the minimal ULFM-style survivor-recovery program.
//
// Eight ranks allreduce in a loop; the fault plan kills rank 3 mid-run.
// In FT mode the kill does not abort the world — the other seven ranks
// observe a rank-attributed failure, revoke the broken communicator,
// agree to continue, shrink onto the survivors, and finish the job on
// seven ranks.  Every time below is deterministic virtual time.
//
//   $ ./ft_demo
#include <cstddef>
#include <iostream>
#include <mutex>
#include <vector>

#include "ft/ft.hpp"
#include "mpi/collectives.hpp"
#include "mpi/comm.hpp"
#include "mpi/world.hpp"

int main() {
  using namespace ombx;

  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.nranks = 8;
  wc.ppn = 8;
  wc.ft.enabled = true;                    // recover instead of aborting
  wc.fault.kills.push_back({3, 400.0});    // kill world rank 3 at t=400us

  mpi::World world(wc);
  std::mutex io;

  world.run([&](mpi::Comm& comm) {
    std::vector<double> val(256, 1.0);
    std::vector<double> sum(256, 0.0);
    const mpi::ConstView sv{reinterpret_cast<const std::byte*>(val.data()),
                            val.size() * sizeof(double),
                            net::MemSpace::kHost};
    const mpi::MutView rv{reinterpret_cast<std::byte*>(sum.data()),
                          sum.size() * sizeof(double), net::MemSpace::kHost};

    int healthy_iters = 0;
    try {
      for (;;) {
        mpi::allreduce(comm, sv, rv, mpi::Datatype::kDouble, mpi::Op::kSum);
        ++healthy_iters;
      }
    } catch (const ft::ProcFailedError& e) {
      std::lock_guard<std::mutex> lk(io);
      std::cout << "rank " << comm.rank() << ": peer rank "
                << e.failed_rank() << " failed (detected at t="
                << comm.now() << "us after " << healthy_iters
                << " healthy allreduces)\n";
    } catch (const ft::RevokedError&) {
      std::lock_guard<std::mutex> lk(io);
      std::cout << "rank " << comm.rank()
                << ": communicator revoked by a peer\n";
    }

    // ULFM recovery: revoke so every still-blocked peer unwinds, agree
    // that the survivors continue, then shrink to a fresh communicator.
    // (The agreement also completes the failure picture: it returns only
    // once every member arrived or died, so the ack below is complete.)
    comm.revoke();
    const mpi::Comm::AgreeOutcome agreed = comm.agree(1u);
    comm.failure_ack();
    mpi::Comm alive = comm.shrink();

    // Finish the job on the seven survivors.
    mpi::allreduce(alive, sv, rv, mpi::Datatype::kDouble, mpi::Op::kSum);

    if (alive.rank() == 0) {
      std::lock_guard<std::mutex> lk(io);
      std::cout << "\nrecovered: " << alive.size() << " of " << comm.size()
                << " ranks continue (agree bits=" << agreed.bits
                << ", new failures seen="
                << (agreed.new_failures ? "yes" : "no") << ")\n"
                << "post-shrink allreduce sum[0]=" << sum[0]
                << " (expected " << alive.size() << ")\n";
    }
  });

  std::cout << "\nworld finished cleanly — no abort, no hang.\n";
  return 0;
}
