// Event tracing: run a small Allreduce with the tracer on, print the
// global virtual-time timeline, and write a CSV next to the binary — the
// simulator's answer to "where did the microseconds go?".
//
//   $ ./timeline [out.csv]
#include <fstream>
#include <iomanip>
#include <iostream>

#include "mpi/collectives.hpp"
#include "mpi/world.hpp"

int main(int argc, char** argv) {
  using namespace ombx;

  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = 4;
  wc.ppn = 1;
  wc.enable_trace = true;

  mpi::World world(wc);
  world.run([](mpi::Comm& c) {
    std::vector<float> mine(256, static_cast<float>(c.rank()));
    std::vector<float> sum(256);
    mpi::allreduce(
        c,
        mpi::ConstView{reinterpret_cast<const std::byte*>(mine.data()),
                       mine.size() * 4},
        mpi::MutView{reinterpret_cast<std::byte*>(sum.data()),
                     sum.size() * 4},
        mpi::Datatype::kFloat, mpi::Op::kSum);
  });

  const mpi::Tracer* tracer = world.engine().tracer();
  std::cout << "# Allreduce timeline, 4 ranks on 4 frontera nodes ("
            << tracer->total_events() << " events)\n";
  std::cout << "# t_start    t_end      rank  event    peer  bytes\n";
  for (const mpi::TraceEvent& e : tracer->merged()) {
    std::cout << "  " << std::fixed << std::setprecision(3) << std::setw(9)
              << e.t_start << "  " << std::setw(9) << e.t_end << "  "
              << std::setw(4) << e.rank << "  " << std::setw(7)
              << mpi::to_string(e.kind) << "  " << std::setw(4) << e.peer
              << "  " << e.bytes << "\n";
  }

  const char* path = argc > 1 ? argv[1] : "timeline.csv";
  std::ofstream csv(path);
  tracer->write_csv(csv);
  std::cout << "\nwrote " << path << "\n";
  return 0;
}
