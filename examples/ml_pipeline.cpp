// Distributed ML end-to-end: train/evaluate the three ML benchmarks of the
// paper (k-NN, k-means elbow sweep, matmul) sequentially and distributed,
// and print the speedup curves (Figs 36-38 in miniature).
//
//   $ ./ml_pipeline
#include <iomanip>
#include <iostream>

#include "core/report.hpp"
#include "ml/dataset.hpp"
#include "ml/distributed.hpp"
#include "ml/kmeans.hpp"
#include "ml/knn.hpp"

int main() {
  using namespace ombx;
  using namespace ombx::ml;

  // --- A real, local taste of the algorithms first. ------------------------
  const Dataset mini = make_dota2_like(1500, 16, 42);
  const TrainTestSplit s = split(mini, 0.2, 42);
  KnnClassifier knn(5);
  knn.fit(s.train);
  std::cout << "k-NN accuracy on a planted Dota2-like set: " << std::fixed
            << std::setprecision(3) << knn.score(s.test) << "\n";

  const Dataset blobs = make_blobs(800, 2, 6, 0.4, 42);
  const auto inertia = inertia_sweep(blobs, 8, 30, 42);
  std::cout << "k-means inertia elbow (k=1..8):";
  for (const double v : inertia) std::cout << " " << std::setprecision(0) << v;
  std::cout << "\n\n";

  // --- The paper-scale distributed runs (virtual time). --------------------
  const auto cluster = net::ClusterSpec::ri2();
  const auto tuning = net::MpiTuning::mvapich2();
  const MlTimingModel model;
  const std::vector<int> procs = paper_proc_counts();

  const auto print_curve = [](const char* name, const ScalingCurve& c) {
    core::Table t(std::string(name) + " scaling on RI2 (28 ppn)",
                  {"Procs", "Time (s)", "Speedup"});
    for (const auto& p : c.points) {
      t.add_row(static_cast<std::size_t>(p.procs), {p.time_s, p.speedup});
    }
    t.print(std::cout);
    std::cout << "\n";
  };

  print_curve("k-NN",
              knn_scaling(cluster, tuning, KnnBenchConfig{}, model, procs));
  print_curve("k-means hyperparameter sweep",
              kmeans_scaling(cluster, tuning, KmeansBenchConfig{}, model,
                             procs));
  print_curve("matmul", matmul_scaling(cluster, tuning, MatmulBenchConfig{},
                                       model, procs));
  return 0;
}
