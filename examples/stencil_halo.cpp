// 2-D Jacobi stencil with halo exchange over a Cartesian topology — the
// classic MPI application pattern, running on the simulated cluster with
// real numerics and virtual-time communication.
//
//   $ ./stencil_halo [ranks] [grid_per_rank] [iters]
#include <cmath>
#include <iomanip>
#include <iostream>
#include <vector>

#include "mpi/cart.hpp"
#include "mpi/collectives.hpp"
#include "mpi/layout.hpp"
#include "mpi/world.hpp"

int main(int argc, char** argv) {
  using namespace ombx;
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 16;
  const int local = argc > 2 ? std::atoi(argv[2]) : 64;  // interior per rank
  const int iters = argc > 3 ? std::atoi(argv[3]) : 25;

  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = nranks;
  wc.ppn = std::min(nranks, wc.cluster.topo.cores_per_node());

  mpi::World world(wc);
  world.run([&](mpi::Comm& comm) {
    const auto dims = mpi::dims_create(comm.size(), 2);
    mpi::CartComm cart(comm, dims, {false, false});
    const auto me = cart.coords(cart.rank());

    // local x local interior with a one-cell halo ring.
    const int n = local + 2;
    std::vector<double> grid(static_cast<std::size_t>(n) * n, 0.0);
    std::vector<double> next = grid;
    // Dirichlet boundary: hot left edge of the global domain.
    if (me[1] == 0) {
      for (int i = 0; i < n; ++i) {
        grid[static_cast<std::size_t>(i) * n] = 100.0;
        next[static_cast<std::size_t>(i) * n] = 100.0;
      }
    }

    const auto [up, down] = cart.shift(0, 1);      // rows
    const auto [left, right] = cart.shift(1, 1);   // columns
    // Column halos are strided: one cell per row.
    const mpi::VectorLayout col{static_cast<std::size_t>(local),
                                sizeof(double),
                                static_cast<std::size_t>(n) *
                                    sizeof(double)};

    const auto cell = [&](std::vector<double>& g, int r, int c) -> double& {
      return g[static_cast<std::size_t>(r) * n + static_cast<std::size_t>(c)];
    };

    double residual = 0.0;
    for (int it = 0; it < iters; ++it) {
      // Row halos (contiguous).
      const std::size_t row_bytes = static_cast<std::size_t>(local) * 8;
      cart.neighbor_sendrecv(
          {reinterpret_cast<std::byte*>(&cell(grid, 1, 1)), row_bytes},
          down,
          {reinterpret_cast<std::byte*>(&cell(grid, 0, 1)), row_bytes}, up,
          1);
      cart.neighbor_sendrecv(
          {reinterpret_cast<std::byte*>(&cell(grid, local, 1)), row_bytes},
          up,
          {reinterpret_cast<std::byte*>(&cell(grid, local + 1, 1)),
           row_bytes},
          down, 2);
      // Column halos (strided): pack/ship/unpack via the layout engine.
      std::vector<std::byte> pack_buf(col.packed_bytes());
      std::vector<std::byte> unpack_buf(col.packed_bytes());
      const auto col_view = [&](std::vector<double>& g, int c) {
        return mpi::MutView{reinterpret_cast<std::byte*>(&cell(g, 1, c)),
                            col.extent_bytes()};
      };
      // send right edge -> right; receive left halo <- left
      (void)mpi::pack(col, mpi::ConstView{col_view(grid, local).data,
                                          col.extent_bytes()},
                      {pack_buf.data(), pack_buf.size()});
      cart.neighbor_sendrecv({pack_buf.data(), pack_buf.size()}, right,
                             {unpack_buf.data(), unpack_buf.size()}, left,
                             3);
      if (left != mpi::CartComm::kNull) {
        (void)mpi::unpack(col, {unpack_buf.data(), unpack_buf.size()},
                          col_view(grid, 0));
      }
      // send left edge -> left; receive right halo <- right
      (void)mpi::pack(col, mpi::ConstView{col_view(grid, 1).data,
                                          col.extent_bytes()},
                      {pack_buf.data(), pack_buf.size()});
      cart.neighbor_sendrecv({pack_buf.data(), pack_buf.size()}, left,
                             {unpack_buf.data(), unpack_buf.size()}, right,
                             4);
      if (right != mpi::CartComm::kNull) {
        (void)mpi::unpack(col, {unpack_buf.data(), unpack_buf.size()},
                          col_view(grid, local + 1));
      }

      // Jacobi sweep (really computed, and charged to the virtual clock).
      residual = 0.0;
      for (int r = 1; r <= local; ++r) {
        for (int c = 1; c <= local; ++c) {
          const double v = 0.25 * (cell(grid, r - 1, c) +
                                   cell(grid, r + 1, c) +
                                   cell(grid, r, c - 1) +
                                   cell(grid, r, c + 1));
          residual += std::abs(v - cell(grid, r, c));
          cell(next, r, c) = v;
        }
      }
      std::swap(grid, next);
      comm.charge_flops(6.0 * local * local);

      // Global residual (the usual convergence check).
      double global = 0.0;
      mpi::allreduce(
          comm,
          {reinterpret_cast<const std::byte*>(&residual), sizeof(double)},
          {reinterpret_cast<std::byte*>(&global), sizeof(double)},
          mpi::Datatype::kDouble, mpi::Op::kSum);
      residual = global;
    }

    if (comm.rank() == 0) {
      std::cout << "2-D Jacobi on a " << dims[0] << "x" << dims[1]
                << " rank grid, " << local << "^2 cells/rank, " << iters
                << " iterations\n"
                << std::fixed << std::setprecision(3)
                << "final global residual: " << residual << "\n"
                << "virtual time: " << comm.now() / 1e3 << " ms\n";
    }
  });
  return 0;
}
