// omb_run: the OMB-Py-style command-line driver.  Runs any benchmark from
// the registry with user options (the paper's Sec. IV-F flag set).
//
//   $ ./omb_run --list
//   $ ./omb_run latency --cluster frontera --ppn 2 --mode omb-py
//   $ ./omb_run allreduce --nranks 16 --min 4 --max 1048576 --mode omb-c
//   $ ./omb_run latency --buffer cupy --cluster ri2-gpu --mode omb-py
//
// Schedule-space exploration (explore/explorer.hpp):
//   $ ./omb_run allreduce --ft --kill 3@400 --nranks 4 --explore \
//         --explore-budget 32 --explore-out repro.sched
//   $ ./omb_run allreduce --ft --kill 3@400 --nranks 4 \
//         --replay-schedule repro.sched
//
// Campaign mode (campaign/campaign.hpp): a declarative sweep spec instead
// of one benchmark, executed across a worker pool with per-cell stopping
// rules and a reproducibility manifest per row:
//   $ ./omb_run --campaign sweep.spec --campaign-workers 4 --csv
#include <iostream>
#include <string>

#include "bench_suite/cli.hpp"
#include "campaign/campaign.hpp"
#include "bench_suite/suite.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"
#include "explore/explore.hpp"
#include "explore/explorer.hpp"
#include "mpi/error.hpp"

namespace {

using namespace ombx;

/// Run the selected benchmark once under the given config.  Exploration
/// re-invokes this per candidate schedule with cfg.oracle armed.
void run_once(const core::BenchmarkInfo* info, const bench_suite::CliOptions& cli,
              const core::SuiteConfig& cfg, bool print) {
  if (cli.ft_mode) {
    const core::FtReport report = bench_suite::run_ft_collective(
        cfg, bench_suite::ft_bench_by_name(cli.bench));
    if (!print) return;
    const core::Table table = core::ft_resilience_table(report);
    if (cli.csv) {
      table.write_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    return;
  }
  const auto rows = info->fn(cfg);
  if (!print) return;
  const bool is_bw = info->metric == "bandwidth_mbps";
  core::Table table(
      "OMB-X " + cli.bench + " (" + cfg.cluster.name + ", " +
          cfg.tuning.name + ", " + core::to_string(cfg.mode) + ", " +
          buffers::to_string(cfg.buffer) + ")",
      {"Size", is_bw ? "Bandwidth (MB/s)" : "Avg Latency (us)",
       "Min", "Max"});
  for (const auto& r : rows) {
    table.add_row(r.size, {r.stats.avg, r.stats.min, r.stats.max});
  }
  if (cli.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// --explore: drive the benchmark through alternate wildcard schedules
/// with strict checking as the violation oracle.  Exit 3 when a failing
/// schedule is found (and write its reproducer to --explore-out).
int run_explore(const core::BenchmarkInfo* info, const bench_suite::CliOptions& cli) {
  core::SuiteConfig cfg = cli.cfg;
  cfg.check.enabled = true;
  cfg.check.strict = true;
  cfg.oracle = std::make_shared<explore::ScheduleOracle>(cfg.nranks);

  explore::SearchConfig sc;
  sc.mode = cli.explore_mode == "fuzz" ? explore::SearchMode::kFuzz
                                       : explore::SearchMode::kDpor;
  sc.budget = cli.explore_budget;

  const explore::RunFn run_one = [&](const explore::Schedule& sched) {
    explore::RunResult rr;
    cfg.oracle->arm(sched);
    try {
      run_once(info, cli, cfg, /*print=*/false);
    } catch (const mpi::DeadlockError& e) {
      rr.failed = true;
      rr.deadlock = true;
      rr.what = e.what();
    } catch (const std::exception& e) {
      rr.failed = true;
      rr.what = e.what();
    }
    rr.log = cfg.oracle->log();
    rr.diverged = cfg.oracle->diverged();
    return rr;
  };

  const explore::SearchResult res = explore::search(run_one, sc);
  std::cerr << "[ombx::explore] " << res.runs << " schedule(s) run, "
            << res.shrink_runs << " shrink run(s), "
            << res.findings.size() << " finding(s)"
            << (res.exhausted ? ", space exhausted" : "") << "\n";
  if (res.findings.empty()) return 0;

  const explore::Finding& f = res.findings.front();
  std::cerr << "[ombx::explore] failing schedule ("
            << (f.deadlock ? "deadlock" : "violation") << "): " << f.what
            << "\n";
  if (!cli.explore_out.empty()) {
    explore::Schedule repro = f.schedule;
    repro.nranks = cfg.nranks;
    explore::save_schedule(repro, cli.explore_out);
    std::cerr << "[ombx::explore] reproducer written to " << cli.explore_out
              << "; replay with --replay-schedule\n";
  }
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  core::register_suite();

  bench_suite::CliOptions cli;
  try {
    cli = bench_suite::parse_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (cli.help) {
    bench_suite::print_usage(std::cout);
    return argc < 2 ? 1 : 0;
  }
  if (cli.list) {
    for (const auto cat :
         {core::Category::kPointToPoint, core::Category::kBlockingCollective,
          core::Category::kVectorCollective}) {
      std::cout << core::to_string(cat) << ":\n";
      for (const auto* b : core::Registry::instance().by_category(cat)) {
        std::cout << "  " << b->name << " — " << b->description << "\n";
      }
    }
    return 0;
  }

  if (!cli.campaign_spec.empty()) {
    try {
      campaign::Spec spec = campaign::load_spec(cli.campaign_spec);
      if (cli.campaign_workers > 0) spec.workers = cli.campaign_workers;
      const campaign::Outcome out = campaign::run(spec);
      const core::Table table = campaign::to_table(out);
      if (cli.json) {
        table.write_json(std::cout);
      } else if (cli.csv) {
        table.write_csv(std::cout);
      } else {
        table.print(std::cout);
      }
      // Counters go to stderr so the results stream stays byte-identical
      // across cached and uncached re-runs of the same spec.
      campaign::counters_table(out.counters).print(std::cerr);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
    return 0;
  }

  const auto* info = core::Registry::instance().find(cli.bench);
  if (info == nullptr && !cli.ft_mode) {
    std::cerr << "unknown benchmark '" << cli.bench << "'; try --list\n";
    return 1;
  }

  try {
    if (cli.explore) return run_explore(info, cli);

    core::SuiteConfig cfg = cli.cfg;
    if (!cli.replay_schedule.empty()) {
      const explore::Schedule sched =
          explore::load_schedule(cli.replay_schedule);
      if (sched.nranks > 0 && sched.nranks != cfg.nranks) {
        throw std::invalid_argument(
            "--replay-schedule was recorded with nranks=" +
            std::to_string(sched.nranks) + ", run has nranks=" +
            std::to_string(cfg.nranks));
      }
      cfg.oracle = std::make_shared<explore::ScheduleOracle>(cfg.nranks);
      cfg.oracle->arm(sched);
      std::cerr << "[ombx::explore] replaying " << cli.replay_schedule
                << " (" << sched.pins.size() << " pinned decision(s))\n";
    }
    run_once(info, cli, cfg, /*print=*/true);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
