// omb_run: the OMB-Py-style command-line driver.  Runs any benchmark from
// the registry with user options (the paper's Sec. IV-F flag set).
//
//   $ ./omb_run --list
//   $ ./omb_run latency --cluster frontera --ppn 2 --mode omb-py
//   $ ./omb_run allreduce --nranks 16 --min 4 --max 1048576 --mode omb-c
//   $ ./omb_run latency --buffer cupy --cluster ri2-gpu --mode omb-py
#include <cstring>
#include <iostream>
#include <string>

#include "bench_suite/suite.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"

namespace {

using namespace ombx;

void usage() {
  std::cout <<
      "usage: omb_run <benchmark> [options]\n"
      "       omb_run --list\n\n"
      "options:\n"
      "  --cluster <frontera|stampede2|ri2|ri2-gpu>   (default frontera)\n"
      "  --mpi <mvapich2|intelmpi|mvapich2-gdr>       (default mvapich2)\n"
      "  --mode <omb-c|omb-py|omb-py-pickle>          (default omb-py)\n"
      "  --buffer <bytearray|numpy|cupy|pycuda|numba> (default numpy)\n"
      "  --nranks <n>      (default 2)\n"
      "  --ppn <n>         (default 1)\n"
      "  --min <bytes>     (default 1)\n"
      "  --max <bytes>     (default 4194304)\n"
      "  --iters <n>       (default 10)\n"
      "  --warmup <n>      (default 2)\n"
      "  --window <n>      (default 64, bandwidth tests)\n"
      "  --validate        (verify payload patterns)\n"
      "  --synthetic       (logical payloads only; for large scale)\n"
      "  --csv             (machine-readable output)\n"
      "  --metrics <file>  (append per-rank substrate counters as CSV)\n"
      "  --trace-json <file> (write Chrome trace-event JSON; view in\n"
      "                       chrome://tracing or ui.perfetto.dev)\n"
      "  --check           (verify MPI usage: collective matching,\n"
      "                     request hygiene, buffer overlap; report on\n"
      "                     stderr after the run)\n"
      "  --check-strict    (escalate the first violation to an error and\n"
      "                     exit nonzero; implies --check)\n"
      "  --check-report <file> (append violations as CSV; implies --check)\n"
      "  --fault-seed <n>  (seed the fault-injection streams)\n"
      "  --kill <rank>@<us> (kill a rank at a virtual time; repeatable)\n"
      "  --drop <rate>     (eager-message drop probability, 0..1)\n"
      "  --ft              (fault-tolerant mode: recover from --kill via\n"
      "                     revoke/agree/shrink instead of aborting;\n"
      "                     allreduce, bcast, barrier or allgather)\n";
}

net::ClusterSpec cluster_by_name(const std::string& s) {
  if (s == "frontera") return net::ClusterSpec::frontera();
  if (s == "stampede2") return net::ClusterSpec::stampede2();
  if (s == "ri2") return net::ClusterSpec::ri2();
  if (s == "ri2-gpu") return net::ClusterSpec::ri2_gpu();
  throw std::invalid_argument("unknown cluster: " + s);
}

net::MpiTuning tuning_by_name(const std::string& s) {
  if (s == "mvapich2") return net::MpiTuning::mvapich2();
  if (s == "intelmpi") return net::MpiTuning::intelmpi();
  if (s == "mvapich2-gdr") return net::MpiTuning::mvapich2_gdr();
  throw std::invalid_argument("unknown MPI library: " + s);
}

core::Mode mode_by_name(const std::string& s) {
  if (s == "omb-c") return core::Mode::kNativeC;
  if (s == "omb-py") return core::Mode::kPythonDirect;
  if (s == "omb-py-pickle") return core::Mode::kPythonPickle;
  throw std::invalid_argument("unknown mode: " + s);
}

buffers::BufferKind buffer_by_name(const std::string& s) {
  if (s == "bytearray") return buffers::BufferKind::kByteArray;
  if (s == "numpy") return buffers::BufferKind::kNumpy;
  if (s == "cupy") return buffers::BufferKind::kCupy;
  if (s == "pycuda") return buffers::BufferKind::kPycuda;
  if (s == "numba") return buffers::BufferKind::kNumba;
  throw std::invalid_argument("unknown buffer: " + s);
}

// "--kill 3@1500" -> kill world rank 3 at virtual time 1500 us.
fault::KillSpec parse_kill(const std::string& s) {
  const std::size_t at = s.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= s.size()) {
    throw std::invalid_argument("--kill expects <rank>@<us>, got: " + s);
  }
  fault::KillSpec k;
  k.rank = std::stoi(s.substr(0, at));
  k.at_time_us = std::stod(s.substr(at + 1));
  return k;
}

bench_suite::CollBench ft_bench_by_name(const std::string& s) {
  if (s == "allreduce") return bench_suite::CollBench::kAllreduce;
  if (s == "bcast") return bench_suite::CollBench::kBcast;
  if (s == "barrier") return bench_suite::CollBench::kBarrier;
  if (s == "allgather") return bench_suite::CollBench::kAllgather;
  throw std::invalid_argument(
      "--ft supports allreduce, bcast, barrier or allgather, not " + s);
}

}  // namespace

int main(int argc, char** argv) {
  core::register_suite();
  if (argc < 2) {
    usage();
    return 1;
  }
  if (std::strcmp(argv[1], "--list") == 0) {
    for (const auto cat :
         {core::Category::kPointToPoint, core::Category::kBlockingCollective,
          core::Category::kVectorCollective}) {
      std::cout << core::to_string(cat) << ":\n";
      for (const auto* b : core::Registry::instance().by_category(cat)) {
        std::cout << "  " << b->name << " — " << b->description << "\n";
      }
    }
    return 0;
  }

  const std::string bench_name = argv[1];
  const auto* info = core::Registry::instance().find(bench_name);
  if (info == nullptr) {
    std::cerr << "unknown benchmark '" << bench_name << "'; try --list\n";
    return 1;
  }

  core::SuiteConfig cfg;
  cfg.ppn = 1;
  bool csv = false;
  bool ft_mode = false;
  try {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--cluster") {
        cfg.cluster = cluster_by_name(next());
      } else if (arg == "--mpi") {
        cfg.tuning = tuning_by_name(next());
      } else if (arg == "--mode") {
        cfg.mode = mode_by_name(next());
      } else if (arg == "--buffer") {
        cfg.buffer = buffer_by_name(next());
      } else if (arg == "--nranks") {
        cfg.nranks = std::stoi(next());
      } else if (arg == "--ppn") {
        cfg.ppn = std::stoi(next());
      } else if (arg == "--min") {
        cfg.opts.min_size = std::stoul(next());
      } else if (arg == "--max") {
        cfg.opts.max_size = std::stoul(next());
      } else if (arg == "--iters") {
        cfg.opts.iterations = std::stoi(next());
      } else if (arg == "--warmup") {
        cfg.opts.warmup = std::stoi(next());
      } else if (arg == "--window") {
        cfg.opts.window_size = std::stoi(next());
      } else if (arg == "--validate") {
        cfg.opts.validate = true;
      } else if (arg == "--synthetic") {
        cfg.payload = mpi::PayloadMode::kSynthetic;
      } else if (arg == "--csv") {
        csv = true;
      } else if (arg == "--metrics") {
        cfg.obs.metrics_csv = next();
      } else if (arg == "--trace-json") {
        cfg.obs.trace_json = next();
      } else if (arg == "--check") {
        cfg.check.enabled = true;
      } else if (arg == "--check-strict") {
        cfg.check.enabled = true;
        cfg.check.strict = true;
      } else if (arg == "--check-report") {
        cfg.check.enabled = true;
        cfg.check.report_csv = next();
      } else if (arg == "--fault-seed") {
        cfg.fault.seed = std::stoull(next());
      } else if (arg == "--kill") {
        cfg.fault.kills.push_back(parse_kill(next()));
      } else if (arg == "--drop") {
        cfg.fault.drop.probability = std::stod(next());
      } else if (arg == "--ft") {
        ft_mode = true;
        cfg.ft.enabled = true;
      } else if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else {
        throw std::invalid_argument("unknown option: " + arg);
      }
    }

    if (ft_mode) {
      const core::FtReport report =
          bench_suite::run_ft_collective(cfg, ft_bench_by_name(bench_name));
      const core::Table table = core::ft_resilience_table(report);
      if (csv) {
        table.write_csv(std::cout);
      } else {
        table.print(std::cout);
      }
      return 0;
    }

    const auto rows = info->fn(cfg);
    const bool is_bw = info->metric == "bandwidth_mbps";
    core::Table table(
        "OMB-X " + bench_name + " (" + cfg.cluster.name + ", " +
            cfg.tuning.name + ", " + core::to_string(cfg.mode) + ", " +
            buffers::to_string(cfg.buffer) + ")",
        {"Size", is_bw ? "Bandwidth (MB/s)" : "Avg Latency (us)",
         "Min", "Max"});
    for (const auto& r : rows) {
      table.add_row(r.size, {r.stats.avg, r.stats.min, r.stats.max});
    }
    if (csv) {
      table.write_csv(std::cout);
    } else {
      table.print(std::cout);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
