// Quickstart: run the OMB-X latency benchmark on a simulated Frontera
// node, native-C baseline vs the mpi4py-like Python binding, and print an
// OSU-style comparison table.
//
//   $ ./quickstart
#include <iostream>

#include "bench_suite/suite.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"

int main() {
  using namespace ombx;

  // 1. Describe the machine and the MPI library.
  core::SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::frontera();
  cfg.tuning = net::MpiTuning::mvapich2();
  cfg.nranks = 2;
  cfg.ppn = 2;  // both ranks on one node: intra-node latency
  cfg.opts.min_size = 1;
  cfg.opts.max_size = 1 << 20;
  cfg.opts.validate = true;

  // 2. Run the ping-pong under both software stacks.
  cfg.mode = core::Mode::kNativeC;
  const auto c_rows = bench_suite::run_latency(cfg);
  cfg.mode = core::Mode::kPythonDirect;
  const auto py_rows = bench_suite::run_latency(cfg);

  // 3. Print the comparison.
  core::Table table("OMB-X Intra-node Latency (frontera, mvapich2)",
                    {"Size", "OMB (us)", "OMB-Py (us)", "Overhead (us)"});
  for (std::size_t i = 0; i < c_rows.size(); ++i) {
    table.add_row(c_rows[i].size,
                  {c_rows[i].stats.avg, py_rows[i].stats.avg,
                   py_rows[i].stats.avg - c_rows[i].stats.avg});
  }
  table.print(std::cout);
  std::cout << "\nEvery number above is deterministic virtual time —\n"
               "rerunning this binary reproduces it bit-for-bit.\n";
  return 0;
}
