// check_misuse: deliberately broken MPI programs, one per checker family.
//
//   $ ./check_misuse <scenario>
//
// Each scenario runs a 2-rank world in strict checking mode, expects the
// run to fail, prints the violation it was aborted with, and exits 0 only
// if the checker caught the misuse (nonzero otherwise).  CI runs every
// scenario and greps for the expected violation code; docs/correctness.md
// walks through each one.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "mpi/collectives.hpp"
#include "mpi/error.hpp"
#include "mpi/nbc.hpp"
#include "mpi/request.hpp"
#include "mpi/rma.hpp"
#include "mpi/world.hpp"

namespace {

using namespace ombx;

mpi::WorldConfig strict_config() {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = 2;
  wc.ppn = 1;
  wc.check.enabled = true;
  wc.check.mode = check::Mode::kStrict;
  return wc;
}

mpi::ConstView cview(const std::vector<std::byte>& v) {
  return mpi::ConstView{v.data(), v.size(), net::MemSpace::kHost};
}
mpi::MutView mview(std::vector<std::byte>& v) {
  return mpi::MutView{v.data(), v.size(), net::MemSpace::kHost};
}

// Rank 0 enters barrier while rank 1 enters bcast: divergent collective
// sequences, the classic PARCOACH target.
void collective_order(mpi::Comm& c) {
  std::vector<std::byte> buf(8);
  if (c.rank() == 0) {
    mpi::barrier(c);
  } else {
    mpi::bcast(c, mview(buf), /*root=*/1);
  }
}

// Both ranks call bcast, but they disagree on who the root is.  With an
// 8-byte (eager) payload both calls complete locally, so only the matcher
// can see the bug.
void root_mismatch(mpi::Comm& c) {
  std::vector<std::byte> buf(8);
  mpi::bcast(c, mview(buf), /*root=*/c.rank());
}

// Rank 0 posts an irecv that nothing ever matches and drops the handle.
void request_leak(mpi::Comm& c) {
  if (c.rank() == 0) {
    std::vector<std::byte> buf(64);
    mpi::Request r = c.irecv(mview(buf), 1, 7);
    (void)r;  // destroyed without wait()/test()
  }
  // No barrier: the leak is diagnosed when `r` dies, the world's
  // end-of-run audit escalates it in strict mode.
}

// Rank 0 abandons an ibarrier handle while rank 1 blocks in barrier.
// Without the checker this is an unattributed watchdog deadlock; with it,
// rank 1 is woken by an abort naming ibarrier and rank 0.
void coll_request_leak(mpi::Comm& c) {
  if (c.rank() == 0) {
    mpi::CollRequest r = mpi::ibarrier(c);
    (void)r;  // destroyed without wait(): peers are stuck
  } else {
    mpi::barrier(c);
  }
}

// Rank 0 sends from a buffer a pending irecv may still rewrite.
void buffer_overlap(mpi::Comm& c) {
  std::vector<std::byte> buf(64);
  if (c.rank() == 0) {
    mpi::Request r = c.irecv(mview(buf), 1, 3);
    c.send(cview(buf), 1, 4);  // reads bytes the irecv may overwrite
    (void)r.wait();
  } else {
    std::vector<std::byte> tmp(64);
    (void)c.recv(mview(tmp), 0, 4);
    c.send(cview(tmp), 0, 3);
  }
}

// Rank 0 sends a message rank 1 never receives; caught by the finalize
// audit as mailbox residue.
void unmatched_send(mpi::Comm& c) {
  std::vector<std::byte> buf(16);
  if (c.rank() == 0) {
    mpi::Request r = c.isend(cview(buf), 1, 99);
    (void)r.wait();
  }
}

// Both ranks issue a put and destroy the window without ever closing the
// epoch with fence().
void rma_epoch_open(mpi::Comm& c) {
  std::vector<std::byte> window(64);
  std::vector<std::byte> src(8);
  mpi::Win win(c, mview(window));
  win.put(cview(src), 1 - c.rank(), 0);
  // no fence: epoch left open, reported when `win` dies
}

struct Scenario {
  const char* name;
  void (*fn)(mpi::Comm&);
  check::Code expect;
  /// Scenarios whose diagnosis lands in the end-of-run audit or a
  /// destructor can't throw at the misuse site; the strict run still
  /// fails, but via World::run's final escalation.
  bool fails_at_end;
};

constexpr Scenario kScenarios[] = {
    {"collective-order", collective_order,
     check::Code::kCollectiveOrderMismatch, false},
    {"root-mismatch", root_mismatch,
     check::Code::kCollectiveSignatureMismatch, false},
    {"request-leak", request_leak, check::Code::kRequestLeak, true},
    {"coll-request-leak", coll_request_leak, check::Code::kCollRequestLeak,
     false},
    {"buffer-overlap", buffer_overlap, check::Code::kBufferOverlap, false},
    {"unmatched-send", unmatched_send, check::Code::kUnmatchedSend, true},
    {"rma-epoch-open", rma_epoch_open, check::Code::kRmaEpochOpen, true},
};

int usage() {
  std::cerr << "usage: check_misuse <scenario>\nscenarios:\n";
  for (const auto& s : kScenarios) std::cerr << "  " << s.name << "\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) return usage();
  const Scenario* scenario = nullptr;
  for (const auto& s : kScenarios) {
    if (std::strcmp(argv[1], s.name) == 0) scenario = &s;
  }
  if (scenario == nullptr) return usage();

  mpi::World world(strict_config());
  try {
    world.run(scenario->fn);
  } catch (const std::exception& e) {
    const std::string what = e.what();
    const char* code = check::code_name(scenario->expect);
    std::cerr << "caught: " << what << "\n";
    if (what.find(code) != std::string::npos) {
      std::cerr << "checker reported the expected " << code << "\n";
      return 0;
    }
    std::cerr << "error does not name the expected code " << code << "\n";
    return 1;
  }
  std::cerr << "run completed cleanly; expected a "
            << check::code_name(scenario->expect) << " violation\n";
  return 1;
}
