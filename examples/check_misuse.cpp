// check_misuse: deliberately broken MPI programs, one per checker family.
//
//   $ ./check_misuse <scenario>
//
// Each scenario runs a 2-rank world in strict checking mode, expects the
// run to fail, prints the violation it was aborted with, and exits 0 only
// if the checker caught the misuse (nonzero otherwise).  CI runs every
// scenario and greps for the expected violation code; docs/correctness.md
// walks through each one.
//
// Schedule-dependent scenarios (explore/explorer.hpp) are clean under the
// default interleaving and only break when a wildcard receive observes
// messages in an unexpected order:
//
//   $ ./check_misuse message-race --explore [--budget N] [--reproducer F]
//   $ ./check_misuse message-race --replay <reproducer>
//   $ ./check_misuse race-free --exhaust [--budget N]
//
// --explore exits 0 only when the default schedule is clean AND the
// search surfaces the seeded bug; --replay re-runs a saved reproducer and
// prints the caught failure (byte-identical across replays); --exhaust
// exits 0 only when the whole schedule space is searched with no finding.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "explore/explore.hpp"
#include "explore/explorer.hpp"
#include "ft/ft.hpp"
#include "mpi/collectives.hpp"
#include "mpi/error.hpp"
#include "mpi/nbc.hpp"
#include "mpi/request.hpp"
#include "mpi/rma.hpp"
#include "mpi/world.hpp"

namespace {

using namespace ombx;

mpi::WorldConfig strict_config() {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = 2;
  wc.ppn = 1;
  wc.check.enabled = true;
  wc.check.mode = check::Mode::kStrict;
  return wc;
}

mpi::ConstView cview(const std::vector<std::byte>& v) {
  return mpi::ConstView{v.data(), v.size(), net::MemSpace::kHost};
}
mpi::MutView mview(std::vector<std::byte>& v) {
  return mpi::MutView{v.data(), v.size(), net::MemSpace::kHost};
}

// Rank 0 enters barrier while rank 1 enters bcast: divergent collective
// sequences, the classic PARCOACH target.
void collective_order(mpi::Comm& c) {
  std::vector<std::byte> buf(8);
  if (c.rank() == 0) {
    mpi::barrier(c);
  } else {
    mpi::bcast(c, mview(buf), /*root=*/1);
  }
}

// Both ranks call bcast, but they disagree on who the root is.  With an
// 8-byte (eager) payload both calls complete locally, so only the matcher
// can see the bug.
void root_mismatch(mpi::Comm& c) {
  std::vector<std::byte> buf(8);
  mpi::bcast(c, mview(buf), /*root=*/c.rank());
}

// Rank 0 posts an irecv that nothing ever matches and drops the handle.
void request_leak(mpi::Comm& c) {
  if (c.rank() == 0) {
    std::vector<std::byte> buf(64);
    mpi::Request r = c.irecv(mview(buf), 1, 7);
    (void)r;  // destroyed without wait()/test()
  }
  // No barrier: the leak is diagnosed when `r` dies, the world's
  // end-of-run audit escalates it in strict mode.
}

// Rank 0 abandons an ibarrier handle while rank 1 blocks in barrier.
// Without the checker this is an unattributed watchdog deadlock; with it,
// rank 1 is woken by an abort naming ibarrier and rank 0.
void coll_request_leak(mpi::Comm& c) {
  if (c.rank() == 0) {
    mpi::CollRequest r = mpi::ibarrier(c);
    (void)r;  // destroyed without wait(): peers are stuck
  } else {
    mpi::barrier(c);
  }
}

// Rank 0 sends from a buffer a pending irecv may still rewrite.
void buffer_overlap(mpi::Comm& c) {
  std::vector<std::byte> buf(64);
  if (c.rank() == 0) {
    mpi::Request r = c.irecv(mview(buf), 1, 3);
    c.send(cview(buf), 1, 4);  // reads bytes the irecv may overwrite
    (void)r.wait();
  } else {
    std::vector<std::byte> tmp(64);
    (void)c.recv(mview(tmp), 0, 4);
    c.send(cview(tmp), 0, 3);
  }
}

// Rank 0 sends a message rank 1 never receives; caught by the finalize
// audit as mailbox residue.
void unmatched_send(mpi::Comm& c) {
  std::vector<std::byte> buf(16);
  if (c.rank() == 0) {
    mpi::Request r = c.isend(cview(buf), 1, 99);
    (void)r.wait();
  }
}

// Both ranks issue a put and destroy the window without ever closing the
// epoch with fence().
void rma_epoch_open(mpi::Comm& c) {
  std::vector<std::byte> window(64);
  std::vector<std::byte> src(8);
  mpi::Win win(c, mview(window));
  win.put(cview(src), 1 - c.rank(), 0);
  // no fence: epoch left open, reported when `win` dies
}

// ---- Schedule-dependent scenarios ------------------------------------------
//
// Tags for the race programs.  The "go" messages sequence the senders so
// that, by the time the receiver reaches its wildcard receive, BOTH
// candidate messages are queued — the decision is real on every run, and
// the default (arrival-order) choice is fixed by the send chain.
constexpr int kData = 11;
constexpr int kGo = 12;

// Three ranks.  Rank 1 receives two ANY_SOURCE messages and then uses the
// FIRST sender as the bcast root — silently assuming rank 0's message
// (sent earlier in causal order) is always matched first.  The default
// schedule satisfies the assumption; forcing the wildcard to take rank
// 2's message first makes rank 1 call bcast with root 2 while everyone
// else uses root 0: kCollectiveSignatureMismatch.
void message_race(mpi::Comm& c) {
  std::vector<std::byte> buf(8);
  std::vector<std::byte> tmp(8);
  if (c.rank() == 0) {
    c.send(cview(buf), 1, kData);  // message A: enqueued at rank 1 first
    c.send(cview(buf), 2, kGo);    // B is only sent after A is queued
    mpi::bcast(c, mview(buf), /*root=*/0);
  } else if (c.rank() == 2) {
    (void)c.recv(mview(tmp), 0, kGo);
    c.send(cview(buf), 1, kData);  // message B
    c.send(cview(buf), 1, kGo);    // go: both A and B are now queued
    mpi::bcast(c, mview(buf), /*root=*/0);
  } else {
    (void)c.recv(mview(tmp), 2, kGo);
    const mpi::Status first = c.recv(mview(tmp), mpi::kAnySource, kData);
    (void)c.recv(mview(tmp), mpi::kAnySource, kData);
    // BUG: the first kData message is not always rank 0's.
    mpi::bcast(c, mview(buf), /*root=*/first.source);
  }
}

// The race-free control: same communication pattern, but the root is
// fixed instead of derived from the match order.  Exploration must
// exhaust the schedule space without a finding.
void race_free(mpi::Comm& c) {
  std::vector<std::byte> buf(8);
  std::vector<std::byte> tmp(8);
  if (c.rank() == 0) {
    c.send(cview(buf), 1, kData);
    c.send(cview(buf), 2, kGo);
  } else if (c.rank() == 2) {
    (void)c.recv(mview(tmp), 0, kGo);
    c.send(cview(buf), 1, kData);
    c.send(cview(buf), 1, kGo);
  } else {
    (void)c.recv(mview(tmp), 2, kGo);
    (void)c.recv(mview(tmp), mpi::kAnySource, kData);
    (void)c.recv(mview(tmp), mpi::kAnySource, kData);
  }
  mpi::bcast(c, mview(buf), /*root=*/0);
}

// Four ranks, FT mode, rank 3 killed at t=400us.  After ULFM recovery the
// survivors elect a coordinator: the first survivor whose status message
// reaches (shrunk) rank 0 — assumed to always be rank 1, the causally
// earlier sender.  Under the recovery wake ordering the default schedule
// delivers rank 1's status first; forcing rank 2's first makes rank 0
// bcast from root 2 while the others use root 1.
void ft_recovery_order(mpi::Comm& c) {
  std::vector<double> val(64, 1.0);
  std::vector<double> sum(64, 0.0);
  const mpi::ConstView sv{reinterpret_cast<const std::byte*>(val.data()),
                          val.size() * sizeof(double), net::MemSpace::kHost};
  const mpi::MutView rv{reinterpret_cast<std::byte*>(sum.data()),
                        sum.size() * sizeof(double), net::MemSpace::kHost};
  try {
    for (;;) {
      mpi::allreduce(c, sv, rv, mpi::Datatype::kDouble, mpi::Op::kSum);
    }
  } catch (const ft::ProcFailedError&) {
  } catch (const ft::RevokedError&) {
  }
  c.revoke();
  (void)c.agree(1u);
  c.failure_ack();
  mpi::Comm alive = c.shrink();  // world ranks {0, 1, 2} -> alive 0..2

  std::vector<std::byte> buf(8);
  std::vector<std::byte> tmp(8);
  if (alive.rank() == 1) {
    alive.send(cview(buf), 0, kData);  // status S1: queued at rank 0 first
    alive.send(cview(buf), 2, kGo);
    mpi::bcast(alive, mview(buf), /*root=*/1);
  } else if (alive.rank() == 2) {
    (void)alive.recv(mview(tmp), 1, kGo);
    alive.send(cview(buf), 0, kData);  // status S2
    alive.send(cview(buf), 0, kGo);    // both statuses now queued
    mpi::bcast(alive, mview(buf), /*root=*/1);
  } else {
    (void)alive.recv(mview(tmp), 2, kGo);
    const mpi::Status first = alive.recv(mview(tmp), mpi::kAnySource, kData);
    (void)alive.recv(mview(tmp), mpi::kAnySource, kData);
    // BUG: "the first responder is the new coordinator" — only true
    // under the default match order.
    mpi::bcast(alive, mview(buf), /*root=*/first.source);
  }
}

struct Scenario {
  const char* name;
  void (*fn)(mpi::Comm&);
  check::Code expect;
  /// Scenarios whose diagnosis lands in the end-of-run audit or a
  /// destructor can't throw at the misuse site; the strict run still
  /// fails, but via World::run's final escalation.
  bool fails_at_end;
};

constexpr Scenario kScenarios[] = {
    {"collective-order", collective_order,
     check::Code::kCollectiveOrderMismatch, false},
    {"root-mismatch", root_mismatch,
     check::Code::kCollectiveSignatureMismatch, false},
    {"request-leak", request_leak, check::Code::kRequestLeak, true},
    {"coll-request-leak", coll_request_leak, check::Code::kCollRequestLeak,
     false},
    {"buffer-overlap", buffer_overlap, check::Code::kBufferOverlap, false},
    {"unmatched-send", unmatched_send, check::Code::kUnmatchedSend, true},
    {"rma-epoch-open", rma_epoch_open, check::Code::kRmaEpochOpen, true},
};

struct ExploreScenario {
  const char* name;
  void (*fn)(mpi::Comm&);
  int nranks;
  bool ft;  ///< FT mode with rank 3 killed at t=400us
  check::Code expect;
};

constexpr ExploreScenario kExploreScenarios[] = {
    {"message-race", message_race, 3, false,
     check::Code::kCollectiveSignatureMismatch},
    {"ft-recovery-order", ft_recovery_order, 4, true,
     check::Code::kCollectiveSignatureMismatch},
    {"race-free", race_free, 3, false,
     check::Code::kCollectiveSignatureMismatch},
};

mpi::WorldConfig explore_config(const ExploreScenario& s) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = s.nranks;
  wc.ppn = 1;
  if (s.ft) {
    wc.ft.enabled = true;
    wc.fault.kills.push_back({3, 400.0});
  }
  return wc;
}

int run_explore(const ExploreScenario& s, int budget,
                const std::string& repro_path) {
  const explore::RunFn run =
      explore::make_world_runner(explore_config(s), s.fn);

  // Contract part 1: the bug must be invisible on the default schedule.
  const explore::RunResult def = run(explore::Schedule{});
  if (def.failed) {
    std::cerr << "default schedule already fails: " << def.what << "\n";
    return 1;
  }
  std::cerr << "default schedule clean; exploring...\n";

  explore::SearchConfig sc;
  sc.budget = budget;
  const explore::SearchResult res = explore::search(run, sc);
  std::cerr << res.runs << " schedule(s) run, " << res.shrink_runs
            << " shrink run(s), " << res.findings.size() << " finding(s)\n";
  if (res.findings.empty()) {
    std::cerr << "exploration found nothing; expected a "
              << check::code_name(s.expect) << " violation\n";
    return 1;
  }
  const explore::Finding& f = res.findings.front();
  std::cerr << "caught: " << f.what << "\n";
  const char* code = check::code_name(s.expect);
  if (f.what.find(code) == std::string::npos) {
    std::cerr << "finding does not name the expected code " << code << "\n";
    return 1;
  }
  if (!repro_path.empty()) {
    explore::Schedule repro = f.schedule;
    repro.nranks = s.nranks;
    explore::save_schedule(repro, repro_path);
    std::cerr << "reproducer (" << repro.pins.size()
              << " pins) written to " << repro_path << "\n";
  }
  std::cerr << "exploration exposed the expected " << code << "\n";
  return 0;
}

int run_replay(const ExploreScenario& s, const std::string& path) {
  const explore::Schedule sched = explore::load_schedule(path);
  const explore::RunFn run =
      explore::make_world_runner(explore_config(s), s.fn);
  const explore::RunResult rr = run(sched);
  if (!rr.failed) {
    std::cerr << "replay completed cleanly; expected a failure\n";
    return 1;
  }
  // The only line CI byte-compares across replays.
  std::cerr << "caught: " << rr.what << "\n";
  return 0;
}

int run_exhaust(const ExploreScenario& s, int budget) {
  const explore::RunFn run =
      explore::make_world_runner(explore_config(s), s.fn);
  explore::SearchConfig sc;
  sc.budget = budget;
  const explore::SearchResult res = explore::search(run, sc);
  std::cerr << res.runs << " schedule(s) run, " << res.findings.size()
            << " finding(s), space "
            << (res.exhausted ? "exhausted" : "NOT exhausted") << "\n";
  return (res.exhausted && res.findings.empty()) ? 0 : 1;
}

int usage() {
  std::cerr << "usage: check_misuse <scenario>\n"
               "       check_misuse <race-scenario> --explore"
               " [--budget N] [--reproducer F]\n"
               "       check_misuse <race-scenario> --replay <file>\n"
               "       check_misuse <race-scenario> --exhaust [--budget N]\n"
               "scenarios:\n";
  for (const auto& s : kScenarios) std::cerr << "  " << s.name << "\n";
  std::cerr << "race scenarios:\n";
  for (const auto& s : kExploreScenarios) std::cerr << "  " << s.name << "\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();

  const ExploreScenario* race = nullptr;
  for (const auto& s : kExploreScenarios) {
    if (std::strcmp(argv[1], s.name) == 0) race = &s;
  }
  if (race != nullptr) {
    std::string mode;
    std::string path;
    int budget = 64;
    try {
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
          if (i + 1 >= argc) {
            throw std::invalid_argument(arg + " needs a value");
          }
          return argv[++i];
        };
        if (arg == "--explore" || arg == "--exhaust") {
          mode = arg;
        } else if (arg == "--replay") {
          mode = arg;
          path = next();
        } else if (arg == "--budget") {
          budget = std::stoi(next());
        } else if (arg == "--reproducer") {
          path = next();
        } else {
          throw std::invalid_argument("unknown option: " + arg);
        }
      }
      if (mode == "--explore") return run_explore(*race, budget, path);
      if (mode == "--replay") return run_replay(*race, path);
      if (mode == "--exhaust") return run_exhaust(*race, budget);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
    return usage();
  }

  if (argc != 2) return usage();
  const Scenario* scenario = nullptr;
  for (const auto& s : kScenarios) {
    if (std::strcmp(argv[1], s.name) == 0) scenario = &s;
  }
  if (scenario == nullptr) return usage();

  mpi::World world(strict_config());
  try {
    world.run(scenario->fn);
  } catch (const std::exception& e) {
    const std::string what = e.what();
    const char* code = check::code_name(scenario->expect);
    std::cerr << "caught: " << what << "\n";
    if (what.find(code) != std::string::npos) {
      std::cerr << "checker reported the expected " << code << "\n";
      return 0;
    }
    std::cerr << "error does not name the expected code " << code << "\n";
    return 1;
  }
  std::cerr << "run completed cleanly; expected a "
            << check::code_name(scenario->expect) << " violation\n";
  return 1;
}
