// Checkpoint/restart demo: buddy-replicated in-memory checkpoints plus
// ULFM rollback recovery, end to end.
//
// Eight ranks allreduce in a loop, taking a coordinated checkpoint every
// ~60us of virtual time; the fault plan kills ranks 1, 3 and 5
// mid-allreduce.  The five survivors revoke, agree, shrink — then roll
// back to the last complete checkpoint generation, adopt the dead ranks'
// buddy copies (on one node the buddy of rank r is rank r+1, so killing
// alternating ranks leaves every buddy alive), and recompute the
// rolled-back iterations before finishing the job.  Every time below is
// deterministic virtual time: run it twice, diff the output — identical.
//
//   $ ./ckpt_demo
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "ft/ft.hpp"
#include "mpi/collectives.hpp"
#include "mpi/comm.hpp"
#include "mpi/world.hpp"

int main() {
  using namespace ombx;

  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.nranks = 8;
  wc.ppn = 8;
  wc.ft.enabled = true;  // recover instead of aborting
  // Kill three of eight mid-allreduce.  Alternating ranks on purpose:
  // each dead rank's buddy (its ring successor) must survive to serve
  // the replica during restore.
  wc.fault.kills.push_back({1, 400.0});
  wc.fault.kills.push_back({3, 400.0});
  wc.fault.kills.push_back({5, 400.0});

  ckpt::CkptConfig ck_cfg;
  ck_cfg.enabled = true;
  ck_cfg.interval_us = 60.0;  // checkpoint roughly every 60us

  mpi::World world(wc);
  ckpt::Store store(wc.nranks);
  std::mutex io;

  world.run([&](mpi::Comm& comm) {
    // The protected application state: an iteration cursor plus the
    // "model" the allreduce keeps averaging.
    std::uint64_t iter_done = 0;
    std::vector<double> model(256, 1.0);
    std::vector<double> sum(256, 0.0);

    ckpt::Checkpointer ck(comm, store, ck_cfg);
    ck.register_region("iter_done", &iter_done, sizeof(iter_done));
    ck.register_region("model", model.data(),
                       model.size() * sizeof(double));

    const mpi::ConstView sv{reinterpret_cast<const std::byte*>(model.data()),
                            model.size() * sizeof(double),
                            net::MemSpace::kHost};
    const mpi::MutView rv{reinterpret_cast<std::byte*>(sum.data()),
                          sum.size() * sizeof(double), net::MemSpace::kHost};

    try {
      for (;;) {
        mpi::allreduce(comm, sv, rv, mpi::Datatype::kDouble, mpi::Op::kSum);
        ++iter_done;
        (void)ck.maybe_checkpoint();
      }
    } catch (const ft::ProcFailedError& e) {
      std::lock_guard<std::mutex> lk(io);
      std::cout << "rank " << comm.rank() << ": peer rank "
                << e.failed_rank() << " failed at t=" << comm.now()
                << "us (iter " << iter_done << ", "
                << ck.checkpoints() << " checkpoints taken)\n";
    } catch (const ft::RevokedError&) {
      // Second-hand detection via a peer's revoke().
    }
    const std::uint64_t iter_at_failure = iter_done;

    // ULFM recovery, then rollback: revoke so every still-blocked peer
    // unwinds, agree to continue, ack the failures, shrink onto the
    // survivors — and restore from the last complete checkpoint
    // generation, adopting the dead ranks' buddy copies.
    comm.revoke();
    (void)comm.agree(1u);
    comm.failure_ack();
    const std::vector<int> failed = comm.get_failed();
    mpi::Comm alive = comm.shrink();

    const ckpt::Checkpointer::RestoreResult rr = ck.restore(alive, failed);

    // Recompute the rolled-back iterations up to the pre-failure
    // frontier (max over survivors), so the job resumes exactly where
    // the failure interrupted it.
    double frontier = 0.0;
    {
      const double mine = static_cast<double>(iter_at_failure);
      mpi::allreduce(alive,
                     mpi::ConstView{reinterpret_cast<const std::byte*>(&mine),
                                    sizeof(mine), net::MemSpace::kHost},
                     mpi::MutView{reinterpret_cast<std::byte*>(&frontier),
                                  sizeof(frontier), net::MemSpace::kHost},
                     mpi::Datatype::kDouble, mpi::Op::kMax);
    }
    const std::uint64_t recompute_from = iter_done;
    while (iter_done < static_cast<std::uint64_t>(frontier)) {
      mpi::allreduce(alive, sv, rv, mpi::Datatype::kDouble, mpi::Op::kSum);
      ++iter_done;
    }

    // Each dead rank is adopted by exactly one survivor; sum for a
    // world-wide count.
    double adopted_total = 0.0;
    {
      const double mine = static_cast<double>(rr.adopted.size());
      mpi::allreduce(alive,
                     mpi::ConstView{reinterpret_cast<const std::byte*>(&mine),
                                    sizeof(mine), net::MemSpace::kHost},
                     mpi::MutView{reinterpret_cast<std::byte*>(&adopted_total),
                                  sizeof(adopted_total), net::MemSpace::kHost},
                     mpi::Datatype::kDouble, mpi::Op::kSum);
    }

    if (alive.rank() == 0) {
      std::lock_guard<std::mutex> lk(io);
      std::cout << "\nrecovered: " << alive.size() << " of " << comm.size()
                << " ranks continue\n"
                << "restored generation " << rr.generation << " (rolled back "
                << rr.rolled_back_us << "us of work), adopted "
                << static_cast<int>(adopted_total)
                << " dead ranks' buddy snapshots\n"
                << "recomputed iterations " << recompute_from << " -> "
                << iter_done << "\n"
                << "post-restore allreduce sum[0]=" << sum[0]
                << " (expected " << alive.size() << ")\n";
    }
  });

  std::cout << "\nworld finished cleanly — no abort, no hang, no lost work "
               "beyond the last checkpoint.\n";
  return 0;
}
